"""Ground-truth per-kernel cost model.

This module plays the role of the physical GPU in the paper's evaluation:
given the metadata Maya's emulator records for a kernel (operation class,
shapes, dtype, byte counts), it returns the time the kernel "actually" takes
on a given device.

The model is a roofline with empirically-shaped efficiency curves:

* compute-bound kernels (GEMM, convolution, fused attention) run at a
  size-dependent fraction of peak tensor throughput,
* memory-bound kernels (elementwise, layernorm, softmax, reductions,
  copies) run at a fraction of peak HBM bandwidth,
* every kernel pays a minimum device-side latency floor, and
* a deterministic noise term keyed on the kernel signature provides the
  structured, shape-dependent variation that real silicon exhibits and that
  Maya's learned estimators must recover from profiled samples.

A second, *per-invocation* jitter term (keyed on the invocation sequence
number) models run-to-run variance that no estimator can learn.  The testbed
applies it; the profiler used to train Maya's estimators samples across it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.hardware.gpu_specs import GPUSpec
from repro.hardware.noise import deterministic_noise

DTYPE_BYTES = {
    "float32": 4,
    "float": 4,
    "tf32": 4,
    "float16": 2,
    "half": 2,
    "bfloat16": 2,
    "int8": 1,
    "uint8": 1,
    "int32": 4,
    "int64": 8,
    "bool": 1,
}

#: Kernel classes considered compute-bound (roofline numerator = FLOPs).
COMPUTE_BOUND_CLASSES = {
    "gemm",
    "batched_gemm",
    "conv_forward",
    "conv_backward_data",
    "conv_backward_filter",
    "attention",
    "fused_triton",
}

#: Kernel classes considered memory-bound (roofline numerator = bytes moved).
MEMORY_BOUND_CLASSES = {
    "elementwise",
    "layernorm",
    "softmax",
    "dropout",
    "reduce",
    "embedding",
    "optimizer_apply",
    "memset",
    "index",
    "sort",
    "cross_entropy",
    "pool",
}

COPY_CLASSES = {"memcpy_h2d", "memcpy_d2h", "memcpy_d2d", "memcpy_h2h"}


def dtype_size(dtype: str) -> int:
    """Byte width of ``dtype`` (defaults to 4 for unknown names)."""
    return DTYPE_BYTES.get(dtype, 4)


@dataclass(frozen=True)
class KernelCostModel:
    """Analytical "true hardware" cost model for device kernels.

    Parameters
    ----------
    shape_noise:
        Magnitude of the deterministic, shape-keyed efficiency variation.
        This is learnable structure (real GPUs have tile/wave quantisation
        effects) and is what makes the learned estimators non-trivial.
    run_noise:
        Magnitude of per-invocation jitter.  This is unlearnable and bounds
        the best achievable prediction accuracy (the oracle rows of Table 3).
    min_kernel_time:
        Device-side latency floor for any kernel, in seconds.
    pcie_bandwidth:
        Host-device copy bandwidth in bytes/s.
    """

    shape_noise: float = 0.04
    run_noise: float = 0.012
    min_kernel_time: float = 2.5e-6
    pcie_bandwidth: float = 24e9

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def kernel_time(
        self,
        gpu: GPUSpec,
        kernel_class: str,
        params: Mapping[str, object],
        invocation: Optional[int] = None,
    ) -> float:
        """Return the ground-truth runtime of one kernel in seconds.

        ``params`` carries the metadata the emulator recorded: FLOPs, bytes
        moved, GEMM dimensions, dtype and so on.  ``invocation`` keys the
        per-invocation jitter; pass ``None`` to get the noiseless expected
        runtime (used by the oracle and for profiling averages).
        """
        base = self._base_time(gpu, kernel_class, params)
        signature = self._signature(kernel_class, params)
        shaped = base * deterministic_noise(
            gpu.name, "shape", kernel_class, signature, scale=self.shape_noise
        )
        if invocation is not None:
            shaped *= deterministic_noise(
                gpu.name, "run", kernel_class, signature, invocation,
                scale=self.run_noise,
            )
        return max(shaped, self.min_kernel_time)

    def expected_kernel_time(
        self, gpu: GPUSpec, kernel_class: str, params: Mapping[str, object]
    ) -> float:
        """Runtime without per-invocation jitter (oracle / profiling mean)."""
        return self.kernel_time(gpu, kernel_class, params, invocation=None)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _base_time(
        self, gpu: GPUSpec, kernel_class: str, params: Mapping[str, object]
    ) -> float:
        dtype = str(params.get("dtype", "float16"))
        flops = float(params.get("flops", 0.0))
        nbytes = float(params.get("bytes", 0.0))

        if kernel_class in COPY_CLASSES:
            return self._copy_time(gpu, kernel_class, nbytes)

        if kernel_class in COMPUTE_BOUND_CLASSES and flops > 0:
            compute = flops / self._effective_flops(gpu, kernel_class, params, dtype)
            memory = nbytes / (gpu.memory_bandwidth * gpu.memory_efficiency)
            return max(compute, memory)

        if nbytes <= 0 and flops > 0:
            # Memory-bound class without byte metadata: assume 3 streams of
            # dtype-width traffic per FLOP-ish element.
            nbytes = flops * dtype_size(dtype)
        bandwidth = gpu.memory_bandwidth * self._memory_efficiency(
            gpu, kernel_class, nbytes
        )
        return nbytes / bandwidth if bandwidth > 0 else self.min_kernel_time

    def _copy_time(self, gpu: GPUSpec, kernel_class: str, nbytes: float) -> float:
        if kernel_class == "memcpy_d2d":
            return nbytes / (gpu.memory_bandwidth * 0.7)
        if kernel_class == "memcpy_h2h":
            return nbytes / 50e9
        return nbytes / self.pcie_bandwidth

    def _effective_flops(
        self,
        gpu: GPUSpec,
        kernel_class: str,
        params: Mapping[str, object],
        dtype: str,
    ) -> float:
        peak = gpu.peak_flops_for(dtype)
        efficiency = gpu.gemm_efficiency
        if kernel_class in ("conv_forward", "conv_backward_data",
                            "conv_backward_filter"):
            efficiency *= 0.9
        if kernel_class == "fused_triton":
            efficiency *= 0.55
        if kernel_class == "attention":
            efficiency *= 0.8

        # Small problems under-utilise the device: ramp efficiency with an
        # exponential saturation curve over arithmetic intensity.
        flops = float(params.get("flops", 0.0))
        saturation = 2.0e9 if gpu.architecture == "hopper" else 6.0e8
        utilisation = 1.0 - math.exp(-flops / saturation)
        efficiency *= 0.15 + 0.85 * utilisation

        # Tile-quantisation penalty for awkward GEMM shapes.
        m = int(params.get("m", 0) or 0)
        n = int(params.get("n", 0) or 0)
        if m and n:
            penalty = 1.0
            if m % 64:
                penalty *= 0.93
            if n % 64:
                penalty *= 0.93
            efficiency *= penalty

        return max(peak * efficiency, 1e9)

    def _memory_efficiency(
        self, gpu: GPUSpec, kernel_class: str, nbytes: float
    ) -> float:
        efficiency = gpu.memory_efficiency
        if kernel_class in ("softmax", "layernorm", "cross_entropy"):
            efficiency *= 0.75
        elif kernel_class in ("reduce", "optimizer_apply"):
            efficiency *= 0.85
        elif kernel_class in ("index", "embedding", "sort"):
            efficiency *= 0.55
        # Small transfers do not saturate HBM.
        if nbytes < 1 << 20:
            efficiency *= 0.35 + 0.65 * (nbytes / float(1 << 20))
        return max(efficiency, 0.02)

    @staticmethod
    def _signature(kernel_class: str, params: Mapping[str, object]) -> tuple:
        """Stable signature of the kernel shape used to key shape noise."""
        keys = ("m", "n", "k", "batch", "elements", "bytes", "flops", "dtype")
        return (kernel_class,) + tuple(
            (key, params.get(key)) for key in keys if key in params
        )


@dataclass(frozen=True)
class CollectiveCostModel:
    """Ground-truth cost of NCCL-style collectives.

    Uses the standard ring-algorithm cost model with a hierarchy-aware
    bottleneck bandwidth, matching how the paper's collective estimators are
    trained from ``nccl-tests``-style sweeps (Appendix B).
    """

    #: Fixed software launch/teardown overhead per collective, seconds.
    launch_overhead: float = 12.0e-6
    shape_noise: float = 0.05
    run_noise: float = 0.01

    def collective_time(
        self,
        op: str,
        nbytes: float,
        ranks: int,
        bus_bandwidth: float,
        latency: float,
        invocation: Optional[int] = None,
    ) -> float:
        """Ground-truth time of one collective.

        Parameters mirror what the trace collator knows: the collective kind,
        payload size in bytes, number of participating ranks, and the
        bottleneck link characteristics supplied by the interconnect spec.
        """
        if ranks <= 1 and op not in ("send", "recv"):
            return self.launch_overhead
        steps, volume_factor = self._algorithm_shape(op, ranks)
        wire = volume_factor * nbytes / bus_bandwidth
        time = self.launch_overhead + steps * latency + wire
        time *= deterministic_noise(
            "coll-shape", op, ranks, int(nbytes), scale=self.shape_noise
        )
        if invocation is not None:
            time *= deterministic_noise(
                "coll-run", op, ranks, int(nbytes), invocation, scale=self.run_noise
            )
        return time

    @staticmethod
    def _algorithm_shape(op: str, ranks: int) -> tuple:
        """Return ``(latency steps, bandwidth volume factor)`` for ``op``."""
        n = max(ranks, 2)
        if op in ("all_reduce", "allreduce"):
            return 2 * (n - 1), 2.0 * (n - 1) / n
        if op in ("reduce_scatter", "all_gather", "allgather", "reducescatter"):
            return n - 1, (n - 1) / n
        if op in ("broadcast", "reduce"):
            return n - 1, 1.0
        if op in ("all_to_all", "alltoall"):
            return n - 1, (n - 1) / n
        if op in ("send", "recv", "sendrecv", "p2p"):
            return 1, 1.0
        if op == "barrier":
            return n - 1, 0.0
        return n - 1, 1.0
