"""Host (CPU) side performance model.

The paper measures wall-clock deltas between device API calls during
emulation and replays them as blocking host delays in the simulator
(Section 4.2, "Worker Trace Generation").  Because this reproduction has no
real PyTorch dispatcher to time, the host model synthesises those deltas.

The cost of one dispatch is split into two components:

* a **deterministic base cost** per API call class
  (:meth:`HostModel.base_cost`) -- this is what the emulator records in the
  ``HOST_DELAY`` trace event, so structurally identical iteration windows
  carry identical host delays and stay canonically periodic (which is what
  lets the simulator fold steady-state iterations);
* a **jitter factor** keyed on the per-worker call sequence number
  (:meth:`HostModel.jitter_factor`) -- applied by the simulation engine when
  it materializes per-event durations, so traces are realistic but
  repeatable.  :func:`host_delay_materializer` is the replay-side half of
  this contract: seeded from the host-model profile the emulator stamps on
  the trace, it reproduces ``base_cost * jitter_factor`` bit for bit.

Legacy traces whose ``HOST_DELAY`` events were recorded pre-jittered (no
``seq`` entry in ``params``) replay by value, exactly as before the split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Tuple

from repro.hardware.noise import fast_noise, stable_hash


#: Baseline host-side cost in seconds for each API call class.
_DEFAULT_DISPATCH_COSTS: Dict[str, float] = {
    "kernel_launch": 8.0e-6,
    "gemm": 12.0e-6,
    "conv": 15.0e-6,
    "memcpy": 10.0e-6,
    "memset": 4.0e-6,
    "malloc": 20.0e-6,
    "free": 8.0e-6,
    "collective": 25.0e-6,
    "event": 2.5e-6,
    "stream": 3.0e-6,
    "sync": 5.0e-6,
    "misc": 3.0e-6,
    "optimizer": 30.0e-6,
    "dataloader": 150.0e-6,
}

#: Cost of last resort when a caller supplies custom ``dispatch_costs``
#: covering neither the requested call class nor ``"misc"``.
_FALLBACK_DISPATCH_COST: float = _DEFAULT_DISPATCH_COSTS["misc"]

#: Lower clamp on the multiplicative jitter factor (a dispatch can be fast,
#: but never free or negative).
_JITTER_FLOOR = 0.2

#: ``WorkerTrace.metadata`` key under which the emulator records the host
#: model profile (name + jitter magnitude) that produced the trace's
#: structured ``HOST_DELAY`` events.
HOST_MODEL_METADATA_KEY = "host_model"

#: Memo of stable per-(host, call class) jitter seeds (hot path).
_CLASS_SEEDS: Dict[Tuple[str, str], int] = {}


def dispatch_class_seed(host_name: str, call_class: str) -> int:
    """Stable jitter seed of one (host, call class) pair, memoized.

    Shared by emulation-time :meth:`HostModel.jitter_factor` and replay-time
    :func:`host_delay_materializer` so both sides of the host-delay split
    draw the same ``fast_noise`` stream.
    """
    key = (host_name, call_class)
    seed = _CLASS_SEEDS.get(key)
    if seed is None:
        seed = stable_hash("host-dispatch", host_name, call_class)
        _CLASS_SEEDS[key] = seed
    return seed


@dataclass(frozen=True)
class HostModel:
    """Synthesises host-side dispatch overheads for emulated API calls."""

    name: str = "epyc-7513"
    #: Multiplier applied to every dispatch cost (slower / faster hosts).
    speed_factor: float = 1.0
    #: Relative magnitude of deterministic jitter applied per call.
    jitter: float = 0.15
    dispatch_costs: Dict[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_DISPATCH_COSTS)
    )

    def base_cost(self, call_class: str) -> float:
        """Deterministic host time for dispatching one ``call_class`` call.

        This is the value the emulator records in the trace.  Unknown call
        classes fall back to the caller's ``"misc"`` cost, or to the module
        default when a custom table carries no ``"misc"`` entry either.
        """
        base = self.dispatch_costs.get(call_class)
        if base is None:
            base = self.dispatch_costs.get("misc", _FALLBACK_DISPATCH_COST)
        return base * self.speed_factor

    def jitter_factor(self, call_class: str, seq: int) -> float:
        """Multiplicative per-call jitter factor (mean 1.0).

        ``seq`` keys the deterministic jitter so that repeated calls of the
        same class do not all take exactly the same time.  This runs once
        per emulated API call -- millions of times per search -- so the
        jitter comes from the integer-mix ``fast_noise`` seeded by a cached
        per-class stable hash rather than a cryptographic hash per call.
        The factor is uniform in ``1 +- jitter * sqrt(3)``, clamped below
        at 0.2.
        """
        noise = fast_noise(dispatch_class_seed(self.name, call_class) + seq,
                           scale=self.jitter)
        return max(noise, _JITTER_FLOOR)

    def dispatch_cost(self, call_class: str, seq: int = 0) -> float:
        """Host time consumed dispatching one call of ``call_class``.

        Equal to ``base_cost(call_class) * jitter_factor(call_class, seq)``
        by construction -- the same two factors the emulator (base) and the
        simulation engine (jitter) apply on their respective sides of the
        host-delay split.
        """
        return self.base_cost(call_class) * self.jitter_factor(call_class,
                                                               seq)

    def trace_profile(self) -> Dict[str, Any]:
        """Metadata blob the emulator stamps on every worker trace.

        Carries exactly what replay-time materialization needs to reproduce
        this model's jitter stream: the seed namespace (``name``) and the
        jitter magnitude.
        """
        return {"name": self.name, "jitter": self.jitter}


def host_delay_materializer(metadata: Mapping[str, Any]
                            ) -> Callable[[Any], float]:
    """Per-event ``HOST_DELAY`` duration function for one worker trace.

    ``metadata`` is the trace's metadata mapping.  The returned callable
    maps a ``HOST_DELAY`` :class:`~repro.core.trace.TraceEvent` to the
    duration the simulator should replay:

    * **structured** events (a ``"seq"`` entry in ``params``, written by
      post-split emulators) store the deterministic base cost in
      ``duration``; the jitter factor is re-synthesised here from the
      recorded host-model profile -- same seed, same sequence number, same
      multiply -- so per-event replay is bit-identical to traces that baked
      the jitter in at emulation time;
    * **legacy** events (no ``"seq"``) were recorded pre-jittered and
      replay by value.
    """
    profile = metadata.get(HOST_MODEL_METADATA_KEY) or {}
    host_name = str(profile.get("name", ""))
    scale = float(profile.get("jitter", 0.0))

    def materialize(event: Any) -> float:
        base = event.duration or 0.0
        seq = event.params.get("seq")
        if seq is None or scale <= 0.0:
            return base
        seed = dispatch_class_seed(
            host_name, str(event.params.get("call_class", "misc")))
        return base * max(fast_noise(seed + int(seq), scale=scale),
                          _JITTER_FLOOR)

    return materialize
