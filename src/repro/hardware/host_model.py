"""Host (CPU) side performance model.

The paper measures wall-clock deltas between device API calls during
emulation and replays them as blocking host delays in the simulator
(Section 4.2, "Worker Trace Generation").  Because this reproduction has no
real PyTorch dispatcher to time, the host model synthesises those deltas:
each API call class has a characteristic dispatch cost, perturbed by
deterministic noise so traces are realistic but repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.hardware.noise import fast_noise, stable_hash


#: Baseline host-side cost in seconds for each API call class.
_DEFAULT_DISPATCH_COSTS: Dict[str, float] = {
    "kernel_launch": 8.0e-6,
    "gemm": 12.0e-6,
    "conv": 15.0e-6,
    "memcpy": 10.0e-6,
    "memset": 4.0e-6,
    "malloc": 20.0e-6,
    "free": 8.0e-6,
    "collective": 25.0e-6,
    "event": 2.5e-6,
    "stream": 3.0e-6,
    "sync": 5.0e-6,
    "misc": 3.0e-6,
    "optimizer": 30.0e-6,
    "dataloader": 150.0e-6,
}

#: Memo of stable per-(host, call class) jitter seeds (hot path).
_CLASS_SEEDS: Dict[Tuple[str, str], int] = {}


@dataclass(frozen=True)
class HostModel:
    """Synthesises host-side dispatch overheads for emulated API calls."""

    name: str = "epyc-7513"
    #: Multiplier applied to every dispatch cost (slower / faster hosts).
    speed_factor: float = 1.0
    #: Relative magnitude of deterministic jitter applied per call.
    jitter: float = 0.15
    dispatch_costs: Dict[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_DISPATCH_COSTS)
    )

    def dispatch_cost(self, call_class: str, seq: int = 0) -> float:
        """Host time consumed dispatching one call of ``call_class``.

        ``seq`` keys the deterministic jitter so that repeated calls of the
        same class do not all take exactly the same time.  This runs once
        per emulated API call -- millions of times per search -- so the
        jitter comes from the integer-mix ``fast_noise`` seeded by a cached
        per-class stable hash rather than a cryptographic hash per call.
        """
        base = self.dispatch_costs.get(call_class, self.dispatch_costs["misc"])
        key = (self.name, call_class)
        class_seed = _CLASS_SEEDS.get(key)
        if class_seed is None:
            class_seed = stable_hash("host-dispatch", self.name, call_class)
            _CLASS_SEEDS[key] = class_seed
        noise = fast_noise(class_seed + seq, scale=self.jitter)
        return base * self.speed_factor * max(noise, 0.2)

    def python_overhead(self, nops: int) -> float:
        """Approximate framework-level Python overhead for ``nops`` ops."""
        return 2.0e-6 * nops * self.speed_factor
