"""Black-box search algorithms over the configuration space.

All algorithms use the ask/tell interface on unit vectors in ``[0, 1]^d``:
``ask()`` proposes a candidate, ``tell(vector, score)`` reports its measured
objective (lower is better; out-of-memory or invalid configurations are
reported as ``math.inf``).  This mirrors how Maya-Search drives Ray Tune /
Nevergrad in the paper, and Appendix C's comparison covers exactly the
algorithms implemented here: CMA-ES, (1+1)-ES, particle swarm, two-points
differential evolution, random and grid search.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Sequence

import numpy as np


class SearchAlgorithm:
    """Ask/tell optimiser over the unit hypercube.

    The interface supports *batched* use: several ``ask()`` calls may be
    outstanding before their ``tell()`` calls arrive, as long as tells come
    back in ask order (the prediction service's batch evaluator guarantees
    this).  Population-based algorithms track their outstanding member
    indices in a FIFO for exactly this reason.
    """

    def __init__(self, dimensions: int, seed: int = 0) -> None:
        self.dimensions = dimensions
        self.rng = np.random.default_rng(seed)
        self.best_vector: Optional[np.ndarray] = None
        self.best_score = math.inf

    def ask(self) -> np.ndarray:
        raise NotImplementedError

    def tell(self, vector: np.ndarray, score: float) -> None:
        if score < self.best_score:
            self.best_score = score
            self.best_vector = np.array(vector, copy=True)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _clip(self, vector: np.ndarray) -> np.ndarray:
        return np.clip(vector, 0.0, 1.0 - 1e-9)


class RandomSearch(SearchAlgorithm):
    """Uniform random sampling."""

    def ask(self) -> np.ndarray:
        return self.rng.random(self.dimensions)


class GridSearch(SearchAlgorithm):
    """Exhaustive enumeration of a per-dimension grid.

    ``resolutions`` gives the number of buckets per dimension (typically the
    number of choices of the corresponding knob); the sequence of proposals
    covers the full Cartesian product and then repeats.
    """

    def __init__(self, dimensions: int, resolutions: Sequence[int],
                 seed: int = 0) -> None:
        super().__init__(dimensions, seed)
        if len(resolutions) != dimensions:
            raise ValueError("resolutions must match dimensions")
        self.resolutions = [max(int(r), 1) for r in resolutions]
        self._cursor = 0
        self._total = int(np.prod(self.resolutions))

    def ask(self) -> np.ndarray:
        index = self._cursor % self._total
        self._cursor += 1
        vector = np.zeros(self.dimensions)
        for dim, resolution in enumerate(self.resolutions):
            index, bucket = divmod(index, resolution)
            vector[dim] = (bucket + 0.5) / resolution
        return vector

    @property
    def exhausted(self) -> bool:
        return self._cursor >= self._total


class OnePlusOneSearch(SearchAlgorithm):
    """(1+1) evolution strategy with one-fifth success-rule step adaptation."""

    def __init__(self, dimensions: int, seed: int = 0,
                 initial_step: float = 0.25) -> None:
        super().__init__(dimensions, seed)
        self.step = initial_step
        self._current = self.rng.random(dimensions)
        self._current_score = math.inf
        self._pending: Optional[np.ndarray] = None

    def ask(self) -> np.ndarray:
        if not math.isfinite(self._current_score):
            candidate = self.rng.random(self.dimensions)
        else:
            candidate = self._clip(
                self._current + self.step * self.rng.standard_normal(self.dimensions)
            )
        self._pending = candidate
        return candidate

    def tell(self, vector: np.ndarray, score: float) -> None:
        super().tell(vector, score)
        if score <= self._current_score:
            self._current = np.array(vector, copy=True)
            self._current_score = score
            self.step = min(self.step * 1.3, 0.6)
        else:
            self.step = max(self.step * 0.85, 0.02)


class CMAESSearch(SearchAlgorithm):
    """Compact Covariance Matrix Adaptation Evolution Strategy.

    Implements rank-mu covariance updates with standard log-decreasing
    recombination weights (Hansen's tutorial), which is sufficient for the
    low-dimensional categorical spaces Maya-Search explores.
    """

    def __init__(self, dimensions: int, seed: int = 0,
                 population_size: Optional[int] = None,
                 sigma: float = 0.25) -> None:
        super().__init__(dimensions, seed)
        self.population_size = population_size or (4 + int(3 * np.log(dimensions + 1)))
        self.mu = self.population_size // 2
        weights = np.log(self.mu + 0.5) - np.log(np.arange(1, self.mu + 1))
        self.weights = weights / weights.sum()
        self.mu_eff = 1.0 / np.sum(self.weights ** 2)
        self.sigma = sigma
        self.mean = self.rng.random(dimensions)
        self.cov = np.eye(dimensions)
        self.learning_rate = min(
            1.0, 2.0 * (self.mu_eff - 2 + 1 / self.mu_eff)
            / ((dimensions + 2) ** 2 + self.mu_eff))
        self._generation: List[tuple] = []

    def ask(self) -> np.ndarray:
        try:
            sample = self.rng.multivariate_normal(
                self.mean, (self.sigma ** 2) * self.cov)
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate cov
            sample = self.mean + self.sigma * self.rng.standard_normal(
                self.dimensions)
        return self._clip(sample)

    def tell(self, vector: np.ndarray, score: float) -> None:
        super().tell(vector, score)
        self._generation.append((score, np.array(vector, copy=True)))
        if len(self._generation) < self.population_size:
            return
        finite = [item for item in self._generation if math.isfinite(item[0])]
        self._generation = []
        if len(finite) < 2:
            # The whole generation was infeasible; widen the search.
            self.sigma = min(self.sigma * 1.2, 0.5)
            return
        finite.sort(key=lambda item: item[0])
        elite = finite[:self.mu]
        vectors = np.vstack([vector for _, vector in elite])
        weights = self.weights[:len(elite)]
        weights = weights / weights.sum()
        old_mean = self.mean
        self.mean = weights @ vectors
        deviations = (vectors - old_mean) / max(self.sigma, 1e-9)
        rank_mu = sum(w * np.outer(d, d) for w, d in zip(weights, deviations))
        self.cov = ((1 - self.learning_rate) * self.cov
                    + self.learning_rate * rank_mu)
        # Keep the covariance well conditioned on categorical plateaus.
        self.cov += 1e-4 * np.eye(self.dimensions)
        spread = float(np.mean(np.std(vectors, axis=0)))
        self.sigma = float(np.clip(0.9 * self.sigma + 0.4 * spread, 0.02, 0.5))


class ParticleSwarmSearch(SearchAlgorithm):
    """Standard global-best particle swarm optimisation."""

    def __init__(self, dimensions: int, seed: int = 0, swarm_size: int = 10,
                 inertia: float = 0.6, cognitive: float = 1.4,
                 social: float = 1.4) -> None:
        super().__init__(dimensions, seed)
        self.swarm_size = swarm_size
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social
        self.positions = self.rng.random((swarm_size, dimensions))
        self.velocities = 0.1 * (self.rng.random((swarm_size, dimensions)) - 0.5)
        self.personal_best = self.positions.copy()
        self.personal_best_score = np.full(swarm_size, math.inf)
        self._cursor = 0
        self._pending: Deque[int] = deque()

    def ask(self) -> np.ndarray:
        index = self._cursor % self.swarm_size
        if self._cursor >= self.swarm_size:
            # Update the particle's velocity before re-evaluating it.
            global_best = (self.best_vector if self.best_vector is not None
                           else self.positions[index])
            r1 = self.rng.random(self.dimensions)
            r2 = self.rng.random(self.dimensions)
            self.velocities[index] = (
                self.inertia * self.velocities[index]
                + self.cognitive * r1 * (self.personal_best[index]
                                         - self.positions[index])
                + self.social * r2 * (global_best - self.positions[index])
            )
            self.positions[index] = self._clip(self.positions[index]
                                               + self.velocities[index])
        self._cursor += 1
        self._pending.append(index)
        return np.array(self.positions[index], copy=True)

    def tell(self, vector: np.ndarray, score: float) -> None:
        super().tell(vector, score)
        index = (self._pending.popleft() if self._pending
                 else (self._cursor - 1) % self.swarm_size)
        if score < self.personal_best_score[index]:
            self.personal_best_score[index] = score
            self.personal_best[index] = np.array(vector, copy=True)


class TwoPointsDESearch(SearchAlgorithm):
    """Differential evolution with two-points crossover."""

    def __init__(self, dimensions: int, seed: int = 0,
                 population_size: int = 12, differential_weight: float = 0.8,
                 crossover: float = 0.7) -> None:
        super().__init__(dimensions, seed)
        self.population_size = population_size
        self.differential_weight = differential_weight
        self.crossover = crossover
        self.population = self.rng.random((population_size, dimensions))
        self.scores = np.full(population_size, math.inf)
        self._cursor = 0
        self._pending: Deque[int] = deque()

    def ask(self) -> np.ndarray:
        index = self._cursor % self.population_size
        self._pending.append(index)
        self._cursor += 1
        if not np.isfinite(self.scores[index]):
            return np.array(self.population[index], copy=True)
        a, b, c = self.rng.choice(self.population_size, size=3, replace=False)
        mutant = self._clip(
            self.population[a]
            + self.differential_weight * (self.population[b] - self.population[c])
        )
        trial = np.array(self.population[index], copy=True)
        # Two-points crossover: copy a contiguous slice from the mutant.
        lo, hi = sorted(self.rng.integers(0, self.dimensions, size=2))
        hi = max(hi, lo + 1)
        trial[lo:hi] = mutant[lo:hi]
        if self.rng.random() < self.crossover:
            point = self.rng.integers(0, self.dimensions)
            trial[point] = mutant[point]
        return trial

    def tell(self, vector: np.ndarray, score: float) -> None:
        super().tell(vector, score)
        index = (self._pending.popleft() if self._pending
                 else (self._cursor - 1) % self.population_size)
        if score <= self.scores[index]:
            self.scores[index] = score
            self.population[index] = np.array(vector, copy=True)


def get_algorithm(name: str, dimensions: int, seed: int = 0,
                  resolutions: Optional[Sequence[int]] = None) -> SearchAlgorithm:
    """Instantiate a search algorithm by name (Appendix C names)."""
    key = name.lower().replace("-", "").replace("_", "")
    if key in ("cma", "cmaes"):
        return CMAESSearch(dimensions, seed)
    if key in ("oneplusone", "1+1"):
        return OnePlusOneSearch(dimensions, seed)
    if key == "pso":
        return ParticleSwarmSearch(dimensions, seed)
    if key in ("twopointsde", "de"):
        return TwoPointsDESearch(dimensions, seed)
    if key == "random":
        return RandomSearch(dimensions, seed)
    if key == "grid":
        if resolutions is None:
            raise ValueError("grid search requires per-dimension resolutions")
        return GridSearch(dimensions, resolutions, seed)
    raise KeyError(f"unknown search algorithm '{name}'")
