"""Maya-Search: automated training-recipe search (Section 5 of the paper).

The search treats configuration tuning as black-box optimisation over the
Table 5 knob space: trials are evaluated by Maya's emulation pipeline (no
GPUs needed), scheduled concurrently, deduplicated, and pruned with
fidelity-preserving tactics derived from known knob monotonicities
(Table 10).  Several search algorithms are provided (CMA-ES, (1+1)-ES, PSO,
two-points differential evolution, random and grid search), matching the
Appendix C comparison.
"""

from repro.search.space import ConfigurationSpace, DEFAULT_SEARCH_SPACE
from repro.search.algorithms import (
    CMAESSearch,
    GridSearch,
    OnePlusOneSearch,
    ParticleSwarmSearch,
    RandomSearch,
    SearchAlgorithm,
    TwoPointsDESearch,
    get_algorithm,
)
from repro.search.pruning import FidelityPreservingPruner, PruningDecision
from repro.search.scheduler import TrialScheduler, TrialStatus
from repro.search.runner import (
    MayaSearch,
    MayaTrialEvaluator,
    SearchResult,
    TrialResult,
)

__all__ = [
    "ConfigurationSpace",
    "DEFAULT_SEARCH_SPACE",
    "SearchAlgorithm",
    "CMAESSearch",
    "GridSearch",
    "OnePlusOneSearch",
    "ParticleSwarmSearch",
    "RandomSearch",
    "TwoPointsDESearch",
    "get_algorithm",
    "FidelityPreservingPruner",
    "PruningDecision",
    "TrialScheduler",
    "TrialStatus",
    "MayaSearch",
    "MayaTrialEvaluator",
    "SearchResult",
    "TrialResult",
]
