"""Fidelity-preserving trial pruning (Section 5.2 and Table 10).

The pruner maintains a history of evaluated configurations and applies four
conservative tactics derived from known monotonicities of the Megatron-LM
knobs.  A pruned trial is never guessed optimistically: it is either marked
OOM (when a strictly less memory-hungry sibling already OOMed) or assigned
the runtime of a sibling whose performance it provably cannot beat, so no
potentially-optimal configuration is lost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.framework.recipe import TrainingRecipe


@dataclass(frozen=True)
class PruningDecision:
    """Outcome of consulting the pruner for a configuration."""

    skip: bool
    #: When skipped: whether the configuration is marked as OOM.
    oom: bool = False
    #: When skipped without OOM: the runtime inherited from a sibling.
    inherited_runtime: Optional[float] = None
    #: Which tactic fired (for the Figure 15 / Table 10 breakdown).
    tactic: Optional[str] = None


@dataclass
class _HistoryEntry:
    oom: bool
    iteration_time: float


def _key_without(recipe: TrainingRecipe, *fields: str) -> Tuple:
    """Hashable key of a recipe ignoring the listed fields."""
    data = recipe.to_dict()
    for field_name in fields:
        data.pop(field_name, None)
    return tuple(sorted(data.items()))


class FidelityPreservingPruner:
    """Implements the four Megatron-LM tactics of Table 10."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._history: Dict[Tuple, _HistoryEntry] = {}
        self.tactic_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # recording results
    # ------------------------------------------------------------------
    def record(self, recipe: TrainingRecipe, oom: bool,
               iteration_time: float) -> None:
        self._history[self._full_key(recipe)] = _HistoryEntry(
            oom=oom, iteration_time=iteration_time)

    @staticmethod
    def _full_key(recipe: TrainingRecipe) -> Tuple:
        return tuple(sorted(recipe.to_dict().items()))

    def _lookup(self, recipe: TrainingRecipe) -> Optional[_HistoryEntry]:
        return self._history.get(self._full_key(recipe))

    # ------------------------------------------------------------------
    # consulting the tactics
    # ------------------------------------------------------------------
    def consult(self, recipe: TrainingRecipe) -> PruningDecision:
        """Decide whether ``recipe`` can be skipped given the history."""
        if not self.enabled:
            return PruningDecision(skip=False)

        for tactic, decision in (
            ("activation_recomputation", self._tactic_recomputation(recipe)),
            ("sequence_parallelism", self._tactic_sequence_parallel(recipe)),
            ("distributed_optimizer", self._tactic_distributed_optimizer(recipe)),
            ("microbatches", self._tactic_microbatches(recipe)),
        ):
            if decision is not None:
                self.tactic_counts[tactic] = self.tactic_counts.get(tactic, 0) + 1
                return decision
        return PruningDecision(skip=False)

    # ------------------------------------------------------------------
    # Table 10 tactics
    # ------------------------------------------------------------------
    def _tactic_recomputation(self, recipe: TrainingRecipe
                              ) -> Optional[PruningDecision]:
        """Recomputation only reduces memory: if the config with it enabled
        OOMed, the same config without it must OOM as well."""
        if recipe.activation_recomputation:
            return None
        sibling = recipe.replace(activation_recomputation=True)
        entry = self._lookup(sibling)
        if entry is not None and entry.oom:
            return PruningDecision(skip=True, oom=True,
                                   tactic="activation_recomputation")
        return None

    def _tactic_sequence_parallel(self, recipe: TrainingRecipe
                                  ) -> Optional[PruningDecision]:
        """Sequence parallelism reduces activation memory at no added cost:
        if the config with it enabled OOMed, disabling it also OOMs."""
        if recipe.sequence_parallelism or recipe.tensor_parallel == 1:
            return None
        sibling = recipe.replace(sequence_parallelism=True)
        entry = self._lookup(sibling)
        if entry is not None and entry.oom:
            return PruningDecision(skip=True, oom=True,
                                   tactic="sequence_parallelism")
        return None

    def _tactic_distributed_optimizer(self, recipe: TrainingRecipe
                                      ) -> Optional[PruningDecision]:
        """The distributed optimizer only helps memory (at some communication
        cost): if the config fits *without* it, enabling it fits too and runs
        no faster, so its runtime can be inherited."""
        if not recipe.distributed_optimizer:
            return None
        sibling = recipe.replace(distributed_optimizer=False)
        entry = self._lookup(sibling)
        if entry is not None and not entry.oom and math.isfinite(
                entry.iteration_time):
            return PruningDecision(skip=True, oom=False,
                                   inherited_runtime=entry.iteration_time,
                                   tactic="distributed_optimizer")
        return None

    def _tactic_microbatches(self, recipe: TrainingRecipe
                             ) -> Optional[PruningDecision]:
        """Without pipeline parallelism, utilisation is inversely proportional
        to the number of microbatches: inherit the runtime of the same config
        with fewer microbatches when it already fits."""
        if recipe.pipeline_parallel != 1 or recipe.microbatch_multiplier <= 1:
            return None
        base_key = _key_without(recipe, "microbatch_multiplier")
        best: Optional[float] = None
        for other_key, entry in self._history.items():
            other = dict(other_key)
            if other.get("pipeline_parallel") != 1:
                continue
            if other.get("microbatch_multiplier", 1) >= recipe.microbatch_multiplier:
                continue
            probe = dict(other)
            probe.pop("microbatch_multiplier", None)
            if tuple(sorted(probe.items())) != base_key:
                continue
            if entry.oom or not math.isfinite(entry.iteration_time):
                continue
            best = entry.iteration_time if best is None else min(
                best, entry.iteration_time)
        if best is not None:
            return PruningDecision(skip=True, oom=False,
                                   inherited_runtime=best,
                                   tactic="microbatches")
        return None
