"""Maya-Search orchestration.

:class:`MayaSearch` drives a search algorithm over a configuration space,
evaluating trials through Maya's emulation pipeline (no GPUs required),
reusing cached results, applying the fidelity-preserving pruner and stopping
early once the leaderboard stabilises -- the same loop as Section 5 / 7.3 of
the paper.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.metrics import mfu
from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.framework.transformer import TransformerModelSpec
from repro.hardware.cluster import ClusterSpec
from repro.search.algorithms import GridSearch, SearchAlgorithm, get_algorithm
from repro.search.pruning import FidelityPreservingPruner
from repro.search.scheduler import TrialScheduler, TrialStatus
from repro.search.space import ConfigurationSpace, default_search_space
from repro.workloads.job import TransformerTrainingJob


@dataclass
class TrialResult:
    """Evaluation outcome of one training recipe."""

    recipe: TrainingRecipe
    iteration_time: float
    mfu: float
    oom: bool
    peak_memory_bytes: int = 0
    wall_time: float = 0.0
    stage_times: Dict[str, float] = field(default_factory=dict)
    status: TrialStatus = TrialStatus.EXECUTED

    @property
    def feasible(self) -> bool:
        return not self.oom and math.isfinite(self.iteration_time)


class MayaTrialEvaluator:
    """Evaluates training recipes with the Maya pipeline."""

    def __init__(self, model: TransformerModelSpec, cluster: ClusterSpec,
                 global_batch_size: int,
                 pipeline: Optional[MayaPipeline] = None,
                 estimator_mode: str = "learned") -> None:
        self.model = model
        self.cluster = cluster
        self.global_batch_size = global_batch_size
        self.pipeline = pipeline or MayaPipeline(cluster,
                                                 estimator_mode=estimator_mode)

    def __call__(self, recipe: TrainingRecipe) -> TrialResult:
        start = time.perf_counter()
        job = TransformerTrainingJob(self.model, recipe, self.cluster,
                                     global_batch_size=self.global_batch_size)
        prediction = self.pipeline.predict(job)
        wall = time.perf_counter() - start
        achieved_mfu = 0.0
        if prediction.succeeded:
            achieved_mfu = mfu(prediction.iteration_time,
                               job.flops_per_iteration(), self.cluster,
                               dtype=recipe.dtype)
        return TrialResult(
            recipe=recipe,
            iteration_time=prediction.iteration_time,
            mfu=achieved_mfu,
            oom=prediction.oom,
            peak_memory_bytes=prediction.peak_memory_bytes,
            wall_time=wall,
            stage_times=dict(prediction.stage_times),
        )


@dataclass
class SearchResult:
    """Outcome of a configuration search."""

    best: Optional[TrialResult]
    history: List[TrialResult]
    status_counts: Dict[str, int]
    total_wall_time: float
    concurrent_makespan: float
    samples_used: int
    unique_valid_configs: int
    stage_time_totals: Dict[str, float] = field(default_factory=dict)
    pruning_tactic_counts: Dict[str, int] = field(default_factory=dict)

    def top(self, count: int = 5) -> List[TrialResult]:
        feasible = [trial for trial in self.history if trial.feasible]
        return sorted(feasible, key=lambda trial: trial.iteration_time)[:count]


class MayaSearch:
    """Configuration search driven by Maya predictions."""

    def __init__(
        self,
        evaluator: Callable[[TrainingRecipe], TrialResult],
        space: Optional[ConfigurationSpace] = None,
        algorithm: str | SearchAlgorithm = "cma",
        world_size: int = 8,
        global_batch_size: int = 256,
        num_layers: int = 24,
        num_heads: int = 16,
        gpus_per_node: Optional[int] = None,
        enable_pruning: bool = True,
        concurrency: int = 8,
        seed: int = 0,
        early_stop_patience: int = 20,
        early_stop_top_k: int = 5,
    ) -> None:
        self.evaluator = evaluator
        self.space = space or default_search_space()
        if isinstance(algorithm, SearchAlgorithm):
            self.algorithm = algorithm
        else:
            resolutions = [len(knob.choices) for knob in self.space.knobs]
            self.algorithm = get_algorithm(algorithm, self.space.dimensions,
                                           seed=seed, resolutions=resolutions)
        self.world_size = world_size
        self.global_batch_size = global_batch_size
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.gpus_per_node = gpus_per_node
        self.pruner = FidelityPreservingPruner(enabled=enable_pruning)
        self.scheduler = TrialScheduler(concurrency=concurrency)
        self.early_stop_patience = early_stop_patience
        self.early_stop_top_k = early_stop_top_k

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, budget: int = 2000) -> SearchResult:
        """Run the search with a budget of algorithm samples."""
        start = time.perf_counter()
        history: List[TrialResult] = []
        evaluated: Dict[Tuple, TrialResult] = {}
        stage_totals: Dict[str, float] = {}
        leaderboard_signature: Optional[Tuple] = None
        stable_count = 0
        samples = 0

        for _ in range(budget):
            if isinstance(self.algorithm, GridSearch) and self.algorithm.exhausted:
                break
            vector = self.algorithm.ask()
            recipe = self.space.decode(vector)
            samples += 1
            key = self._key(recipe)

            problems = recipe.validate(self.world_size, self.global_batch_size,
                                       self.num_layers, self.num_heads,
                                       self.gpus_per_node)
            if problems:
                self.scheduler.record(key, TrialStatus.INVALID, math.inf)
                self.algorithm.tell(vector, math.inf)
                continue

            if key in evaluated:
                cached = evaluated[key]
                self.scheduler.record(key, TrialStatus.CACHED,
                                      self._score(cached))
                self.algorithm.tell(vector, self._score(cached))
                continue

            decision = self.pruner.consult(recipe)
            if decision.skip:
                result = TrialResult(
                    recipe=recipe,
                    iteration_time=(math.inf if decision.oom
                                    else float(decision.inherited_runtime)),
                    mfu=0.0,
                    oom=decision.oom,
                    status=TrialStatus.SKIPPED,
                )
                evaluated[key] = result
                history.append(result)
                self.pruner.record(recipe, result.oom, result.iteration_time)
                self.scheduler.record(key, TrialStatus.SKIPPED,
                                      self._score(result),
                                      tactic=decision.tactic)
                self.algorithm.tell(vector, self._score(result))
                continue

            result = self.evaluator(recipe)
            result.status = TrialStatus.EXECUTED
            evaluated[key] = result
            history.append(result)
            self.pruner.record(recipe, result.oom, result.iteration_time)
            self.scheduler.record(key, TrialStatus.EXECUTED,
                                  self._score(result),
                                  wall_time=result.wall_time)
            self.algorithm.tell(vector, self._score(result))
            for stage, value in result.stage_times.items():
                stage_totals[stage] = stage_totals.get(stage, 0.0) + value

            # Early stopping: the MFU leaderboard of the top-k configs must
            # stay unchanged for `patience` consecutive non-OOM trials.
            if result.feasible:
                signature = self._leaderboard_signature(history)
                if signature == leaderboard_signature:
                    stable_count += 1
                else:
                    leaderboard_signature = signature
                    stable_count = 0
                if stable_count >= self.early_stop_patience:
                    break

        feasible = [trial for trial in history if trial.feasible]
        best = min(feasible, key=lambda trial: trial.iteration_time,
                   default=None)
        return SearchResult(
            best=best,
            history=history,
            status_counts=self.scheduler.status_counts(),
            total_wall_time=time.perf_counter() - start,
            concurrent_makespan=self.scheduler.concurrent_makespan(),
            samples_used=samples,
            unique_valid_configs=len(evaluated),
            stage_time_totals=stage_totals,
            pruning_tactic_counts=dict(self.pruner.tactic_counts),
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _key(recipe: TrainingRecipe) -> Tuple:
        return tuple(sorted(recipe.to_dict().items()))

    @staticmethod
    def _score(result: TrialResult) -> float:
        if result.oom or not math.isfinite(result.iteration_time):
            return math.inf
        return result.iteration_time

    def _leaderboard_signature(self, history: List[TrialResult]) -> Tuple:
        feasible = [trial for trial in history if trial.feasible]
        top = sorted(feasible, key=lambda trial: trial.iteration_time)
        return tuple(round(trial.mfu, 4)
                     for trial in top[:self.early_stop_top_k])
