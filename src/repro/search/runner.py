"""Maya-Search orchestration.

:class:`MayaSearch` drives a search algorithm over a configuration space,
evaluating trials through the prediction service (no GPUs required) in an
ask-batch / evaluate-batch / tell-batch loop: up to ``concurrency`` proposals
are collected, evaluated together (in parallel threads and against the
cross-trial artifact cache when the evaluator is service-backed), and their
scores reported back to the algorithm in ask order.  The fidelity-preserving
pruner and leaderboard-based early stopping work exactly as in Section 5 /
7.3 of the paper.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.metrics import mfu
from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.framework.transformer import TransformerModelSpec
from repro.hardware.cluster import ClusterSpec
from repro.search.algorithms import GridSearch, SearchAlgorithm, get_algorithm
from repro.search.pruning import FidelityPreservingPruner
from repro.search.scheduler import TrialScheduler, TrialStatus
from repro.search.space import ConfigurationSpace, default_search_space
from repro.service import PredictionService
from repro.workloads.job import TransformerTrainingJob


@dataclass
class TrialResult:
    """Evaluation outcome of one training recipe."""

    recipe: TrainingRecipe
    iteration_time: float
    mfu: float
    oom: bool
    peak_memory_bytes: int = 0
    wall_time: float = 0.0
    stage_times: Dict[str, float] = field(default_factory=dict)
    status: TrialStatus = TrialStatus.EXECUTED
    #: How the prediction service resolved this trial ("prediction",
    #: "artifacts", "miss", "disabled" or None for non-service evaluators).
    cache: Optional[str] = None

    @property
    def feasible(self) -> bool:
        return not self.oom and math.isfinite(self.iteration_time)


class MayaTrialEvaluator:
    """Evaluates training recipes through the prediction service.

    This used to drive :class:`MayaPipeline` directly; it is now a thin
    adapter over :class:`~repro.service.PredictionService`, which owns the
    artifact cache, the shared duration provider and the thread pool.
    """

    def __init__(self, model: TransformerModelSpec, cluster: ClusterSpec,
                 global_batch_size: int,
                 pipeline: Optional[MayaPipeline] = None,
                 estimator_mode: str = "learned",
                 service: Optional[PredictionService] = None,
                 enable_cache: bool = True,
                 share_provider: bool = True,
                 max_workers: Optional[int] = None,
                 backend: Optional[str] = None,
                 worker_hosts: Optional[List[str]] = None,
                 sync_timeout: Optional[float] = None,
                 lease_timeout: Optional[float] = None,
                 store_dir: Optional[str] = None,
                 scheduler: Optional[str] = None,
                 server: Optional[str] = None) -> None:
        self.model = model
        self.cluster = cluster
        self.global_batch_size = global_batch_size
        if service is None and server is not None:
            # Evaluate against a running `repro serve` endpoint instead of
            # a local service: the client duck-types the service surface
            # this evaluator uses, so everything downstream is unchanged.
            from repro.service.server import PredictionClient
            service = PredictionClient(server)
        elif service is None:
            service = PredictionService(
                cluster=cluster,
                pipeline=pipeline,
                estimator_mode=estimator_mode,
                enable_cache=enable_cache,
                share_provider=share_provider,
                max_workers=max_workers or 1,
                backend=backend or "thread",
                workers=worker_hosts,
                sync_timeout=sync_timeout,
                lease_timeout=lease_timeout,
                store_dir=store_dir,
                scheduler=scheduler,
            )
        else:
            if worker_hosts is not None:
                service.worker_hosts = list(worker_hosts)
            if backend is not None:
                service.backend = backend
            if store_dir is not None and hasattr(service, "attach_store"):
                service.attach_store(store_dir)
        self.service = service
        self.pipeline = service.pipeline
        self._auto_workers = max_workers is None and service.max_workers == 1

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _job(self, recipe: TrainingRecipe) -> TransformerTrainingJob:
        return TransformerTrainingJob(self.model, recipe, self.cluster,
                                      global_batch_size=self.global_batch_size)

    def _to_trial(self, recipe: TrainingRecipe, job: TransformerTrainingJob,
                  prediction, wall_time: float) -> TrialResult:
        achieved_mfu = 0.0
        if prediction.succeeded:
            achieved_mfu = mfu(prediction.iteration_time,
                               job.flops_per_iteration(), self.cluster,
                               dtype=recipe.dtype)
        return TrialResult(
            recipe=recipe,
            iteration_time=prediction.iteration_time,
            mfu=achieved_mfu,
            oom=prediction.oom,
            peak_memory_bytes=prediction.peak_memory_bytes,
            wall_time=wall_time,
            stage_times=dict(prediction.stage_times),
            cache=prediction.metadata.get("service_cache"),
        )

    def __call__(self, recipe: TrainingRecipe) -> TrialResult:
        start = time.perf_counter()
        job = self._job(recipe)
        prediction = self.service.predict(job)
        return self._to_trial(recipe, job, prediction,
                              time.perf_counter() - start)

    def evaluate_many(self, recipes: List[TrainingRecipe]) -> List[TrialResult]:
        """Evaluate a batch of recipes (parallel + cached via the service)."""
        jobs = [self._job(recipe) for recipe in recipes]
        predictions = self.service.predict_many(jobs)
        return [
            self._to_trial(recipe, job, prediction,
                           sum(prediction.stage_times.values()))
            for recipe, job, prediction in zip(recipes, jobs, predictions)
        ]

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def set_default_workers(self, workers: int) -> None:
        """Adopt the search's concurrency unless workers were set explicitly.

        Capped at the machine's CPU count -- with Python threads, workers
        beyond the available cores only add GIL contention, and with
        processes they only add fork overhead.
        """
        if self._auto_workers:
            cores = os.cpu_count() or 1
            self.service.max_workers = max(min(int(workers), cores), 1)

    def set_backend(self, backend: str) -> None:
        """Switch the service's batch-evaluation backend."""
        self.service.backend = backend

    def close(self) -> None:
        """Release the service's backend resources (persistent pools)."""
        self.service.close()

    def __enter__(self) -> "MayaTrialEvaluator":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def cache_stats(self) -> Dict[str, float]:
        return self.service.cache_stats()

    def throughput_stats(self) -> Dict[str, object]:
        return self.service.throughput_stats()


@dataclass
class SearchResult:
    """Outcome of a configuration search."""

    best: Optional[TrialResult]
    history: List[TrialResult]
    status_counts: Dict[str, int]
    total_wall_time: float
    concurrent_makespan: float
    samples_used: int
    unique_valid_configs: int
    stage_time_totals: Dict[str, float] = field(default_factory=dict)
    pruning_tactic_counts: Dict[str, int] = field(default_factory=dict)
    #: Artifact/prediction cache counters from the service (empty for
    #: non-service evaluators).
    cache_stats: Dict[str, float] = field(default_factory=dict)
    #: Real elapsed evaluation time summed over batches.
    measured_makespan: float = 0.0
    #: Number of evaluated batches (ask-batch / tell-batch rounds).
    evaluation_batches: int = 0

    def top(self, count: int = 5) -> List[TrialResult]:
        feasible = [trial for trial in self.history if trial.feasible]
        return sorted(feasible, key=lambda trial: trial.iteration_time)[:count]


# Proposal kinds used by the batched loop.
_INVALID = "invalid"
_KNOWN = "known"
_PRUNED = "pruned"
_DUP = "dup"
_EVAL = "eval"


@dataclass
class _Proposal:
    vector: object
    recipe: Optional[TrainingRecipe]
    key: Optional[Tuple]
    kind: str
    #: For _EVAL: index into the batch's evaluation list.  For _DUP: index
    #: of the leading proposal carrying the same key.
    slot: int = -1
    tactic: Optional[str] = None


class MayaSearch:
    """Configuration search driven by Maya predictions."""

    def __init__(
        self,
        evaluator: Callable[[TrainingRecipe], TrialResult],
        space: Optional[ConfigurationSpace] = None,
        algorithm: str | SearchAlgorithm = "cma",
        world_size: int = 8,
        global_batch_size: int = 256,
        num_layers: int = 24,
        num_heads: int = 16,
        gpus_per_node: Optional[int] = None,
        enable_pruning: bool = True,
        concurrency: int = 8,
        seed: int = 0,
        early_stop_patience: int = 20,
        early_stop_top_k: int = 5,
        backend: Optional[str] = None,
    ) -> None:
        self.evaluator = evaluator
        self.space = space or default_search_space()
        if isinstance(algorithm, SearchAlgorithm):
            self.algorithm = algorithm
        else:
            resolutions = [len(knob.choices) for knob in self.space.knobs]
            self.algorithm = get_algorithm(algorithm, self.space.dimensions,
                                           seed=seed, resolutions=resolutions)
        self.world_size = world_size
        self.global_batch_size = global_batch_size
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.gpus_per_node = gpus_per_node
        self.pruner = FidelityPreservingPruner(enabled=enable_pruning)
        self.scheduler = TrialScheduler(concurrency=concurrency)
        self.early_stop_patience = early_stop_patience
        self.early_stop_top_k = early_stop_top_k
        # Service-backed evaluators turn the scheduler's concurrency into
        # real worker-pool parallelism unless configured explicitly.
        if hasattr(evaluator, "set_default_workers"):
            evaluator.set_default_workers(concurrency)
        if backend is not None and hasattr(evaluator, "set_backend"):
            evaluator.set_backend(backend)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, budget: int = 2000) -> SearchResult:
        """Run the search with a budget of algorithm samples."""
        start = time.perf_counter()
        history: List[TrialResult] = []
        #: Trials the runner has resolved, keyed by full recipe signature.
        evaluated: Dict[Tuple, TrialResult] = {}
        stage_totals: Dict[str, float] = {}
        leaderboard_signature: Optional[Tuple] = None
        stable_count = 0
        samples = 0
        service_mode = hasattr(self.evaluator, "evaluate_many")
        stop = False

        while not stop and samples < budget:
            proposals, samples, exhausted = self._collect_batch(
                budget, samples, evaluated, service_mode)
            if not proposals:
                break

            to_eval = [prop for prop in proposals if prop.kind == _EVAL]
            results: List[TrialResult] = []
            if to_eval:
                batch_start = time.perf_counter()
                results = self._evaluate_batch(
                    [prop.recipe for prop in to_eval])
                self.scheduler.record_batch(
                    time.perf_counter() - batch_start, len(to_eval))

            # Tell the algorithm in ask order (population-based algorithms
            # rely on it) and fold results into the bookkeeping.
            for prop in proposals:
                if prop.kind == _INVALID:
                    self.scheduler.record(prop.key, TrialStatus.INVALID,
                                          math.inf)
                    self.algorithm.tell(prop.vector, math.inf)
                    continue
                if prop.kind == _KNOWN:
                    score = self._score(evaluated[prop.key])
                    self.scheduler.record(prop.key, TrialStatus.CACHED, score)
                    self.algorithm.tell(prop.vector, score)
                    continue
                if prop.kind == _PRUNED:
                    result = evaluated[prop.key]
                    history.append(result)
                    self.pruner.record(prop.recipe, result.oom,
                                       result.iteration_time)
                    self.scheduler.record(prop.key, TrialStatus.SKIPPED,
                                          self._score(result),
                                          tactic=prop.tactic)
                    self.algorithm.tell(prop.vector, self._score(result))
                    continue
                if prop.kind == _DUP:
                    leader = evaluated.get(prop.key)
                    score = self._score(leader) if leader else math.inf
                    self.scheduler.record(prop.key, TrialStatus.CACHED, score)
                    self.algorithm.tell(prop.vector, score)
                    continue

                result = results[prop.slot]
                score = self._score(result)
                if result.cache == "prediction" and prop.key in evaluated:
                    # The service resolved a configuration re-proposed within
                    # this run from its cross-trial cache: no new work
                    # happened.  (Hits against a cache warmed by a *previous*
                    # run still count as this run's executed trials below.)
                    result.status = TrialStatus.CACHED
                    self.scheduler.record(prop.key, TrialStatus.CACHED, score)
                    self.algorithm.tell(prop.vector, score)
                    continue

                result.status = TrialStatus.EXECUTED
                evaluated[prop.key] = result
                history.append(result)
                self.pruner.record(prop.recipe, result.oom,
                                   result.iteration_time)
                self.scheduler.record(prop.key, TrialStatus.EXECUTED, score,
                                      wall_time=result.wall_time)
                self.algorithm.tell(prop.vector, score)
                for stage, value in result.stage_times.items():
                    stage_totals[stage] = stage_totals.get(stage, 0.0) + value

                # Early stopping: the top-k leaderboard (by predicted
                # iteration time, the search objective) must stay unchanged
                # for `patience` consecutive non-OOM trials.
                if result.feasible:
                    signature = self._leaderboard_signature(history)
                    if signature == leaderboard_signature:
                        stable_count += 1
                    else:
                        leaderboard_signature = signature
                        stable_count = 0
                    if stable_count >= self.early_stop_patience:
                        # Finish recording the batch (the work already
                        # happened and the algorithm's tell FIFO must
                        # drain), then stop asking for more.
                        stop = True
            if exhausted:
                break

        feasible = [trial for trial in history if trial.feasible]
        best = min(feasible, key=lambda trial: trial.iteration_time,
                   default=None)
        cache_stats: Dict[str, float] = {}
        if hasattr(self.evaluator, "cache_stats"):
            cache_stats = dict(self.evaluator.cache_stats())
        return SearchResult(
            best=best,
            history=history,
            status_counts=self.scheduler.status_counts(),
            total_wall_time=time.perf_counter() - start,
            concurrent_makespan=self.scheduler.concurrent_makespan(),
            samples_used=samples,
            unique_valid_configs=len(evaluated),
            stage_time_totals=stage_totals,
            pruning_tactic_counts=dict(self.pruner.tactic_counts),
            cache_stats=cache_stats,
            measured_makespan=self.scheduler.measured_makespan(),
            evaluation_batches=self.scheduler.batch_count(),
        )

    # ------------------------------------------------------------------
    # batch collection / evaluation
    # ------------------------------------------------------------------
    def _collect_batch(
        self,
        budget: int,
        samples: int,
        evaluated: Dict[Tuple, TrialResult],
        service_mode: bool,
    ) -> Tuple[List[_Proposal], int, bool]:
        """Ask the algorithm for one batch of proposals.

        Each batch asks at most one concurrency-width of proposals.  That
        keeps tells flowing back into the algorithm's adaptation promptly
        (a larger ask window measurably degrades CMA in invalid-heavy
        regions), at the cost of batches whose pending-evaluation count
        falls below the worker-pool width when some proposals resolve
        immediately.  With concurrency 1 this degrades exactly to the
        classic serial ask -> evaluate -> tell loop.
        """
        proposals: List[_Proposal] = []
        batch_keys: Dict[Tuple, int] = {}
        pending = 0
        max_asks = max(self.scheduler.concurrency, 1)
        exhausted = False

        while samples < budget and len(proposals) < max_asks:
            if isinstance(self.algorithm, GridSearch) and self.algorithm.exhausted:
                exhausted = True
                break
            vector = self.algorithm.ask()
            recipe = self.space.decode(vector)
            samples += 1
            key = self._key(recipe)

            problems = recipe.validate(self.world_size, self.global_batch_size,
                                       self.num_layers, self.num_heads,
                                       self.gpus_per_node)
            if problems:
                proposals.append(_Proposal(vector, recipe, key, _INVALID))
                continue

            known = evaluated.get(key)
            if known is not None and (not service_mode
                                      or known.status is not TrialStatus.EXECUTED):
                # Pruner-skipped (and, for non-service evaluators, executed)
                # re-proposals resolve from the runner's own table.  With a
                # service evaluator, executed re-proposals flow through the
                # service so the cross-trial cache does the reuse.
                proposals.append(_Proposal(vector, recipe, key, _KNOWN))
                continue

            if known is None and key not in batch_keys:
                decision = self.pruner.consult(recipe)
                if decision.skip:
                    result = TrialResult(
                        recipe=recipe,
                        iteration_time=(math.inf if decision.oom
                                        else float(decision.inherited_runtime)),
                        mfu=0.0,
                        oom=decision.oom,
                        status=TrialStatus.SKIPPED,
                    )
                    evaluated[key] = result
                    proposals.append(_Proposal(vector, recipe, key, _PRUNED,
                                               tactic=decision.tactic))
                    continue

            if key in batch_keys and not service_mode:
                # Same configuration proposed twice within one batch: defer
                # to the leading proposal's result.
                proposals.append(_Proposal(vector, recipe, key, _DUP,
                                           slot=batch_keys[key]))
                continue

            batch_keys.setdefault(key, pending)
            proposals.append(_Proposal(vector, recipe, key, _EVAL,
                                       slot=pending))
            pending += 1
        return proposals, samples, exhausted

    def _evaluate_batch(self, recipes: List[TrainingRecipe]) -> List[TrialResult]:
        if hasattr(self.evaluator, "evaluate_many"):
            return self.evaluator.evaluate_many(recipes)
        return [self.evaluator(recipe) for recipe in recipes]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _key(recipe: TrainingRecipe) -> Tuple:
        return recipe.signature()

    @staticmethod
    def _score(result: TrialResult) -> float:
        if result.oom or not math.isfinite(result.iteration_time):
            return math.inf
        return result.iteration_time

    def _leaderboard_signature(self, history: List[TrialResult]) -> Tuple:
        feasible = [trial for trial in history if trial.feasible]
        top = sorted(feasible, key=lambda trial: trial.iteration_time)
        # Signature over the search objective itself (iteration time), so
        # early stopping, `best` and `top()` all rank trials identically.
        return tuple(round(trial.iteration_time, 6)
                     for trial in top[:self.early_stop_top_k])
