"""Trial scheduling: caching, pruning hooks and concurrency accounting.

Maya-Search evaluates many cheap emulation-based trials.  The scheduler
keeps the bookkeeping the paper's ablations report on:

* **cached** trials -- the search algorithm re-proposed a configuration that
  was already evaluated (Figure 15's "Cached" bars),
* **skipped** trials -- the fidelity-preserving pruner resolved the trial
  from history without running it (Figure 15's "Skipped" bars),
* **executed** trials -- actually emulated and simulated, and
* a simulated makespan for a given number of concurrent CPU workers, which
  is how the end-to-end search runtimes of Figure 11a / Table 6 are
  accounted (each worker runs one trial at a time, pinned to its cores).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class TrialStatus(str, enum.Enum):
    EXECUTED = "executed"
    CACHED = "cached"
    SKIPPED = "skipped"
    INVALID = "invalid"


@dataclass
class ScheduledTrial:
    """Record of one proposed configuration."""

    recipe_key: Tuple
    status: TrialStatus
    score: float
    wall_time: float = 0.0
    tactic: Optional[str] = None


class TrialScheduler:
    """Tracks trial statuses and simulated concurrent execution."""

    def __init__(self, concurrency: int = 8) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        self.concurrency = concurrency
        self.trials: List[ScheduledTrial] = []
        self._worker_load = [0.0] * concurrency
        self._cache: Dict[Tuple, float] = {}
        #: Wall-clock time of each evaluated batch (real parallelism).
        self._batch_walls: List[float] = []
        self._batch_sizes: List[int] = []

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def cached_score(self, recipe_key: Tuple) -> Optional[float]:
        return self._cache.get(recipe_key)

    def record(self, recipe_key: Tuple, status: TrialStatus, score: float,
               wall_time: float = 0.0, tactic: Optional[str] = None) -> None:
        """Record a trial outcome and account its cost to a worker."""
        self.trials.append(ScheduledTrial(recipe_key=recipe_key, status=status,
                                          score=score, wall_time=wall_time,
                                          tactic=tactic))
        if status is TrialStatus.EXECUTED:
            self._cache[recipe_key] = score
            # Greedy least-loaded assignment approximates the paper's
            # concurrent trial scheduler (workers pinned to CPU cores).
            worker = min(range(self.concurrency),
                         key=lambda idx: self._worker_load[idx])
            self._worker_load[worker] += wall_time
        elif status in (TrialStatus.CACHED, TrialStatus.SKIPPED):
            self._cache.setdefault(recipe_key, score)

    def record_batch(self, wall_time: float, size: int) -> None:
        """Record the measured wall-clock time of one evaluated batch.

        With the prediction service's parallel ``predict_many`` this is
        *real* elapsed time, complementing the simulated
        :meth:`concurrent_makespan`.
        """
        self._batch_walls.append(wall_time)
        self._batch_sizes.append(size)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def status_counts(self) -> Dict[str, int]:
        counts = {status.value: 0 for status in TrialStatus}
        for trial in self.trials:
            counts[trial.status.value] += 1
        return counts

    def executed_wall_time(self) -> float:
        return sum(trial.wall_time for trial in self.trials
                   if trial.status is TrialStatus.EXECUTED)

    def concurrent_makespan(self) -> float:
        """Simulated end-to-end runtime with ``concurrency`` workers."""
        return max(self._worker_load) if any(self._worker_load) else 0.0

    def measured_makespan(self) -> float:
        """Real elapsed evaluation time summed over recorded batches."""
        return sum(self._batch_walls)

    def batch_count(self) -> int:
        return len(self._batch_walls)
