"""Configuration-space specification (Table 5 of the paper).

A :class:`ConfigurationSpace` is an ordered set of categorical knobs.  Search
algorithms operate on vectors in ``[0, 1)^d`` which the space decodes into
:class:`~repro.framework.recipe.TrainingRecipe` objects; grid search simply
enumerates the Cartesian product.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.framework.recipe import TrainingRecipe


@dataclass(frozen=True)
class Knob:
    """One categorical configuration dimension."""

    name: str
    choices: Tuple[object, ...]

    def decode(self, unit_value: float) -> object:
        """Map a value in ``[0, 1)`` onto one of the knob's choices."""
        clipped = min(max(float(unit_value), 0.0), 1.0 - 1e-9)
        return self.choices[int(clipped * len(self.choices))]

    def encode(self, choice: object) -> float:
        """Centre of the unit-interval bucket representing ``choice``."""
        index = self.choices.index(choice)
        return (index + 0.5) / len(self.choices)


@dataclass(frozen=True)
class ConfigurationSpace:
    """The set of training recipes Maya-Search explores."""

    knobs: Tuple[Knob, ...]
    #: Recipe fields that stay fixed for every point of the space.
    fixed: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        return len(self.knobs)

    def size(self) -> int:
        total = 1
        for knob in self.knobs:
            total *= len(knob.choices)
        return total

    def knob_names(self) -> List[str]:
        return [knob.name for knob in self.knobs]

    # ------------------------------------------------------------------
    # encoding / decoding
    # ------------------------------------------------------------------
    def decode(self, vector: Sequence[float]) -> TrainingRecipe:
        """Convert a unit vector into a training recipe."""
        if len(vector) != self.dimensions:
            raise ValueError(
                f"expected a vector of length {self.dimensions}, got {len(vector)}"
            )
        values = dict(self.fixed)
        for knob, unit_value in zip(self.knobs, vector):
            values[knob.name] = knob.decode(unit_value)
        return TrainingRecipe(**values)  # type: ignore[arg-type]

    def encode(self, recipe: TrainingRecipe) -> np.ndarray:
        """Convert a recipe into the unit vector representing it."""
        vector = np.zeros(self.dimensions)
        data = recipe.to_dict()
        for index, knob in enumerate(self.knobs):
            vector[index] = knob.encode(data[knob.name])
        return vector

    # ------------------------------------------------------------------
    # enumeration and sampling
    # ------------------------------------------------------------------
    def enumerate(self) -> Iterator[TrainingRecipe]:
        """Yield every recipe in the space (grid-search order)."""
        for combo in itertools.product(*(knob.choices for knob in self.knobs)):
            values = dict(self.fixed)
            values.update({knob.name: value
                           for knob, value in zip(self.knobs, combo)})
            yield TrainingRecipe(**values)  # type: ignore[arg-type]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a uniformly random unit vector."""
        return rng.random(self.dimensions)

    def valid_recipes(self, world_size: int, global_batch_size: int,
                      num_layers: int, num_heads: int,
                      gpus_per_node: int | None = None) -> List[TrainingRecipe]:
        """Enumerate only the recipes valid for a given model/cluster."""
        return [recipe for recipe in self.enumerate()
                if recipe.is_valid(world_size, global_batch_size, num_layers,
                                   num_heads, gpus_per_node)]


def default_search_space(
    tensor_parallel: Sequence[int] = (1, 2, 4, 8),
    pipeline_parallel: Sequence[int] = (1, 2, 4, 8),
    microbatch_multiplier: Sequence[int] = (1, 2, 4, 6, 8),
    virtual_stages: Sequence[int] = (1, 2, 4),
    activation_recomputation: Sequence[bool] = (True, False),
    sequence_parallelism: Sequence[bool] = (True, False),
    distributed_optimizer: Sequence[bool] = (True, False),
    dtype: str = "bfloat16",
) -> ConfigurationSpace:
    """Build the Table 5 search space (optionally restricted)."""
    return ConfigurationSpace(
        knobs=(
            Knob("tensor_parallel", tuple(tensor_parallel)),
            Knob("pipeline_parallel", tuple(pipeline_parallel)),
            Knob("microbatch_multiplier", tuple(microbatch_multiplier)),
            Knob("virtual_stages", tuple(virtual_stages)),
            Knob("activation_recomputation", tuple(activation_recomputation)),
            Knob("sequence_parallelism", tuple(sequence_parallelism)),
            Knob("distributed_optimizer", tuple(distributed_optimizer)),
        ),
        fixed={"dtype": dtype},
    )


#: The exact knob grid of Table 5 (2,400 raw points before validity checks).
DEFAULT_SEARCH_SPACE = default_search_space()
