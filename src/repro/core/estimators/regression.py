"""From-scratch decision-tree and random-forest regressors.

Maya's default kernel estimators are random-forest regressors trained on
profiled kernel runtimes (Section 4.3 and Appendix B).  scikit-learn is not
available in this environment, so this module provides a compact, numpy-only
implementation with the usual knobs (depth, minimum leaf size, bootstrap
sampling, per-split feature subsampling).

Targets are regressed in log-space, which both stabilises the variance
criterion across the several orders of magnitude kernel runtimes span and
makes the resulting errors behave like relative (percentage) errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class _Node:
    """A single node of a regression tree (leaf when ``feature`` is None)."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeRegressor:
    """CART-style regression tree minimising within-node variance."""

    def __init__(self, max_depth: int = 10, min_samples_leaf: int = 2,
                 max_features: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng or np.random.default_rng(0)
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        if features.ndim != 2:
            raise ValueError("features must be a 2D array")
        if len(features) != len(targets):
            raise ValueError("features and targets must have the same length")
        if len(features) == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        self._root = self._build(features, targets, depth=0)
        return self

    def _build(self, features: np.ndarray, targets: np.ndarray,
               depth: int) -> _Node:
        node_value = float(np.mean(targets))
        if (depth >= self.max_depth
                or len(targets) < 2 * self.min_samples_leaf
                or np.allclose(targets, targets[0])):
            return _Node(value=node_value)

        split = self._best_split(features, targets)
        if split is None:
            return _Node(value=node_value)
        feature_idx, threshold, left_mask = split
        left = self._build(features[left_mask], targets[left_mask], depth + 1)
        right = self._build(features[~left_mask], targets[~left_mask], depth + 1)
        return _Node(value=node_value, feature=feature_idx, threshold=threshold,
                     left=left, right=right)

    def _best_split(self, features: np.ndarray, targets: np.ndarray):
        n_samples, n_features = features.shape
        candidates = np.arange(n_features)
        if self.max_features is not None and self.max_features < n_features:
            candidates = self._rng.choice(n_features, size=self.max_features,
                                          replace=False)
        best = None
        best_score = np.inf
        total_sum = targets.sum()
        total_sq = np.square(targets).sum()

        for feature_idx in candidates:
            order = np.argsort(features[:, feature_idx], kind="mergesort")
            sorted_features = features[order, feature_idx]
            sorted_targets = targets[order]
            cum_sum = np.cumsum(sorted_targets)
            cum_sq = np.cumsum(np.square(sorted_targets))
            # Candidate split after position i (1-indexed sizes).
            left_counts = np.arange(1, n_samples)
            right_counts = n_samples - left_counts
            valid = ((left_counts >= self.min_samples_leaf)
                     & (right_counts >= self.min_samples_leaf)
                     & (np.diff(sorted_features) > 1e-12))
            if not np.any(valid):
                continue
            left_sum = cum_sum[:-1]
            left_sq = cum_sq[:-1]
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            # Sum of squared errors on each side (variance * count).
            left_sse = left_sq - np.square(left_sum) / left_counts
            right_sse = right_sq - np.square(right_sum) / right_counts
            scores = np.where(valid, left_sse + right_sse, np.inf)
            idx = int(np.argmin(scores))
            if scores[idx] < best_score:
                best_score = float(scores[idx])
                threshold = float((sorted_features[idx]
                                   + sorted_features[idx + 1]) / 2.0)
                best = (int(feature_idx), threshold)

        if best is None:
            return None
        feature_idx, threshold = best
        left_mask = features[:, feature_idx] <= threshold
        if left_mask.all() or not left_mask.any():
            return None
        return feature_idx, threshold, left_mask

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        features = np.atleast_2d(features)
        return np.array([self._predict_one(row) for row in features])

    def _predict_one(self, row: np.ndarray) -> float:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value


class RandomForestRegressor:
    """Bagged ensemble of :class:`DecisionTreeRegressor` trees."""

    def __init__(self, n_trees: int = 8, max_depth: int = 12,
                 min_samples_leaf: int = 2,
                 max_features: Optional[int] = None,
                 bootstrap: bool = True, seed: int = 0) -> None:
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self._trees: List[DecisionTreeRegressor] = []

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RandomForestRegressor":
        if len(features) == 0:
            raise ValueError("cannot fit a forest on an empty dataset")
        rng = np.random.default_rng(self.seed)
        n_samples, n_features = features.shape
        max_features = self.max_features or n_features
        self._trees = []
        for tree_idx in range(self.n_trees):
            tree_rng = np.random.default_rng(self.seed + 1000 * (tree_idx + 1))
            if self.bootstrap:
                indices = rng.integers(0, n_samples, size=n_samples)
            else:
                indices = np.arange(n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=tree_rng,
            )
            tree.fit(features[indices], targets[indices])
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("forest has not been fitted")
        predictions = np.vstack([tree.predict(features) for tree in self._trees])
        return predictions.mean(axis=0)

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees)


def mean_absolute_percentage_error(actual: np.ndarray,
                                   predicted: np.ndarray) -> float:
    """MAPE in percent, matching the metric reported in Tables 7-9."""
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    mask = actual > 0
    if not np.any(mask):
        return 0.0
    return float(np.mean(np.abs(predicted[mask] - actual[mask])
                         / actual[mask]) * 100.0)
