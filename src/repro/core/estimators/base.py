"""Estimator interfaces.

Every estimator answers one question: *how long will this operation take on
the target device?*  Kernel estimators see the metadata the emulator captured
(operation class + parameter dictionary); collective estimators additionally
see the communicator group so they can account for topology (intra- vs
inter-node rings).
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence


class KernelRuntimeEstimator(Protocol):
    """Predicts the duration of a single device kernel or copy."""

    def estimate(self, kernel_class: str, params: Mapping[str, object]) -> float:
        """Return the predicted runtime in seconds."""
        ...


class CollectiveRuntimeEstimator(Protocol):
    """Predicts the on-the-wire duration of a collective operation."""

    def estimate_collective(
        self,
        op: str,
        nbytes: float,
        ranks: Sequence[int],
        gpus_per_node: int,
    ) -> float:
        """Return the predicted collective duration in seconds.

        ``ranks`` is the (remapped) participant group; ``gpus_per_node`` lets
        the estimator decide whether the group crosses node boundaries.
        """
        ...
