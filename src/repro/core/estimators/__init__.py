"""Kernel runtime estimators.

Estimators are the pluggable components of stage (3) in Figure 5: they
annotate every compute / copy / collective operation in the collated trace
with a predicted duration.  Maya's defaults are random-forest regressors
trained on profiled kernel runtimes (Appendix B); an analytical roofline
estimator and an oracle estimator (true runtimes, used for the Table 3
error breakdown) are also provided.
"""

from repro.core.estimators.base import (
    CollectiveRuntimeEstimator,
    KernelRuntimeEstimator,
)
from repro.core.estimators.analytical import AnalyticalKernelEstimator
from repro.core.estimators.collective import (
    HierarchicalNetworkModel,
    ProfiledCollectiveEstimator,
)
from repro.core.estimators.oracle import OracleCollectiveEstimator, OracleKernelEstimator
from repro.core.estimators.profiler import CollectiveProfiler, KernelProfiler
from repro.core.estimators.regression import (
    DecisionTreeRegressor,
    RandomForestRegressor,
)
from repro.core.estimators.suite import EstimatorSuite, build_estimator_suite

__all__ = [
    "CollectiveRuntimeEstimator",
    "KernelRuntimeEstimator",
    "AnalyticalKernelEstimator",
    "HierarchicalNetworkModel",
    "ProfiledCollectiveEstimator",
    "OracleKernelEstimator",
    "OracleCollectiveEstimator",
    "KernelProfiler",
    "CollectiveProfiler",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "EstimatorSuite",
    "build_estimator_suite",
]
