"""Oracle estimators.

The oracle rows in Table 3 of the paper use *actual* (profiled) per-kernel
runtimes instead of the regressor's predictions, isolating the error
contributed by the emulation + simulation stages alone.  In this
reproduction the oracle simply queries the ground-truth cost models with the
per-invocation jitter disabled -- the best any estimator could possibly do.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.hardware.gpu_specs import GPUSpec
from repro.hardware.interconnect import InterconnectSpec
from repro.hardware.kernel_cost import CollectiveCostModel, KernelCostModel


class OracleKernelEstimator:
    """Returns ground-truth expected kernel runtimes."""

    def __init__(self, gpu: GPUSpec,
                 cost_model: KernelCostModel | None = None) -> None:
        self.gpu = gpu
        self.cost_model = cost_model or KernelCostModel()

    def estimate(self, kernel_class: str, params: Mapping[str, object]) -> float:
        return self.cost_model.expected_kernel_time(self.gpu, kernel_class, params)


class OracleCollectiveEstimator:
    """Returns ground-truth expected collective durations."""

    def __init__(self, interconnect: InterconnectSpec,
                 cost_model: CollectiveCostModel | None = None) -> None:
        self.interconnect = interconnect
        self.cost_model = cost_model or CollectiveCostModel()

    def estimate_collective(self, op: str, nbytes: float,
                            ranks: Sequence[int], gpus_per_node: int) -> float:
        bandwidth = self.interconnect.effective_bus_bandwidth(ranks, gpus_per_node)
        latency = self.interconnect.base_latency(ranks, gpus_per_node)
        return self.cost_model.collective_time(
            op=op, nbytes=nbytes, ranks=len(ranks),
            bus_bandwidth=bandwidth, latency=latency, invocation=None,
        )
