"""Analytical (roofline) kernel estimator.

A deliberately simpler model than the ground-truth
:class:`~repro.hardware.kernel_cost.KernelCostModel`: it knows the device's
peak throughput and bandwidth and assumes fixed efficiency factors, but it
does not model the shape-dependent efficiency structure real silicon has.
It is used as a fallback for kernel classes without profiled data and as the
"static analysis" style estimator users can plug in.
"""

from __future__ import annotations

from typing import Mapping

from repro.hardware.gpu_specs import GPUSpec
from repro.hardware.kernel_cost import (
    COMPUTE_BOUND_CLASSES,
    COPY_CLASSES,
    dtype_size,
)


class AnalyticalKernelEstimator:
    """Roofline estimate with fixed efficiency assumptions."""

    def __init__(self, gpu: GPUSpec, compute_efficiency: float = 0.60,
                 memory_efficiency: float = 0.75,
                 pcie_bandwidth: float = 24e9,
                 min_kernel_time: float = 3.0e-6) -> None:
        self.gpu = gpu
        self.compute_efficiency = compute_efficiency
        self.memory_efficiency = memory_efficiency
        self.pcie_bandwidth = pcie_bandwidth
        self.min_kernel_time = min_kernel_time

    def estimate(self, kernel_class: str, params: Mapping[str, object]) -> float:
        dtype = str(params.get("dtype", "float16"))
        flops = float(params.get("flops", 0.0) or 0.0)
        nbytes = float(params.get("bytes", 0.0) or 0.0)

        if kernel_class in COPY_CLASSES:
            if kernel_class == "memcpy_d2d":
                bandwidth = self.gpu.memory_bandwidth * 0.7
            elif kernel_class == "memcpy_h2h":
                bandwidth = 50e9
            else:
                bandwidth = self.pcie_bandwidth
            return max(nbytes / bandwidth, self.min_kernel_time)

        if kernel_class in COMPUTE_BOUND_CLASSES and flops > 0:
            peak = self.gpu.peak_flops_for(dtype) * self.compute_efficiency
            compute = flops / peak
            memory = nbytes / (self.gpu.memory_bandwidth * self.memory_efficiency)
            return max(compute, memory, self.min_kernel_time)

        if nbytes <= 0 and flops > 0:
            nbytes = flops * dtype_size(dtype)
        bandwidth = self.gpu.memory_bandwidth * self.memory_efficiency
        return max(nbytes / bandwidth, self.min_kernel_time)
