"""Collective (network) runtime estimators.

Two estimators are provided, mirroring the choices the paper offers its
users (Section 4.3, "Network Model"):

* :class:`ProfiledCollectiveEstimator` -- fitted to nccl-tests-style sweeps
  collected by :class:`~repro.core.estimators.profiler.CollectiveProfiler`,
  interpolating within the profiled size range (Appendix B).
* :class:`HierarchicalNetworkModel` -- an analytical, topology-aware model
  standing in for external network simulators such as ASTRA-sim, used for
  the hyperscale experiments (Section 7.4) where no profiled data exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.estimators.profiler import ProfiledCollectiveSample
from repro.hardware.interconnect import InterconnectSpec
from repro.hardware.kernel_cost import CollectiveCostModel


def _algorithm_shape(op: str, nranks: int) -> Tuple[float, float]:
    """Ring-algorithm latency steps and bandwidth volume factor."""
    return CollectiveCostModel._algorithm_shape(op, nranks)


class ProfiledCollectiveEstimator:
    """Least-squares fit of latency/bandwidth terms to profiled collectives.

    For every (op, intra-node vs inter-node) bucket we fit

    ``time = c0 + c1 * steps(nranks) + c2 * volume_factor(op, nranks) * bytes``

    which recovers the launch overhead, per-hop latency and effective bus
    bandwidth from the profiled sweep -- the same structure nccl-tests
    reports as "bus bandwidth".
    """

    def __init__(self, gpus_per_node: int) -> None:
        self.gpus_per_node = gpus_per_node
        #: (op, intra_node) -> fitted coefficients [c0, c1, c2].
        self._coefficients: Dict[Tuple[str, bool], np.ndarray] = {}

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, samples: Sequence[ProfiledCollectiveSample]
            ) -> "ProfiledCollectiveEstimator":
        buckets: Dict[Tuple[str, bool], List[ProfiledCollectiveSample]] = {}
        for sample in samples:
            buckets.setdefault((sample.op, sample.intra_node), []).append(sample)
        for key, bucket in buckets.items():
            rows = []
            targets = []
            for sample in bucket:
                steps, factor = _algorithm_shape(sample.op, sample.nranks)
                rows.append([1.0, float(steps), factor * sample.nbytes])
                targets.append(sample.runtime)
            matrix = np.asarray(rows)
            target = np.asarray(targets)
            coeffs, *_ = np.linalg.lstsq(matrix, target, rcond=None)
            self._coefficients[key] = np.maximum(coeffs, 0.0)
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self._coefficients)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def estimate_collective(self, op: str, nbytes: float,
                            ranks: Sequence[int], gpus_per_node: int) -> float:
        nranks = max(len(ranks), 1)
        nodes = {rank // gpus_per_node for rank in ranks}
        intra = len(nodes) <= 1
        coeffs = self._coefficients.get((op, intra))
        if coeffs is None:
            # Fall back to the nearest bucket (other locality, then any op).
            coeffs = self._coefficients.get((op, not intra))
        if coeffs is None and self._coefficients:
            coeffs = next(iter(self._coefficients.values()))
        if coeffs is None:
            raise RuntimeError("collective estimator has not been fitted")
        steps, factor = _algorithm_shape(op, nranks)
        return float(coeffs[0] + coeffs[1] * steps + coeffs[2] * factor * nbytes)


@dataclass
class HierarchicalNetworkModel:
    """Analytical two-level (intra-node / inter-node) collective model.

    This is the pluggable "network simulator" backend used for clusters too
    large to profile (the 1K-16K GPU experiments integrate ASTRA-sim in the
    paper; here the hierarchical model plays that role).  Collectives that
    span nodes are decomposed into an intra-node phase at NVLink bandwidth
    and an inter-node phase bottlenecked by the scale-out fabric.
    """

    interconnect: InterconnectSpec
    launch_overhead: float = 12.0e-6

    def estimate_collective(self, op: str, nbytes: float,
                            ranks: Sequence[int], gpus_per_node: int) -> float:
        nranks = max(len(ranks), 1)
        if nranks <= 1:
            return self.launch_overhead
        nodes = {rank // gpus_per_node for rank in ranks}
        num_nodes = max(len(nodes), 1)
        intra_link = self.interconnect.intra_node
        inter_link = self.interconnect.inter_node
        efficiency = self.interconnect.collective_efficiency

        if num_nodes == 1:
            steps, factor = _algorithm_shape(op, nranks)
            wire = factor * nbytes / (intra_link.bandwidth * efficiency)
            return self.launch_overhead + steps * intra_link.latency + wire

        ranks_per_node = max(nranks // num_nodes, 1)
        # Phase 1: reduce-scatter (or gather) within each node over NVLink.
        intra_steps, intra_factor = _algorithm_shape("reduce_scatter",
                                                     ranks_per_node)
        intra_time = (intra_steps * intra_link.latency
                      + intra_factor * nbytes
                      / (intra_link.bandwidth * efficiency))
        # Phase 2: the collective across node leaders over the fabric, on the
        # 1/ranks_per_node shard each leader owns.
        inter_steps, inter_factor = _algorithm_shape(op, num_nodes)
        inter_time = (inter_steps * inter_link.latency
                      + inter_factor * (nbytes / ranks_per_node)
                      / (inter_link.bandwidth * efficiency))
        # Phase 3: redistribute within the node (skipped for one-shot ops).
        redistribute = 0.0
        if op in ("all_reduce", "all_gather", "all_to_all", "broadcast"):
            redistribute = intra_time
        return self.launch_overhead + intra_time + inter_time + redistribute
