"""Feature extraction shared by the profiler and the learned estimators.

Kernel metadata dictionaries are converted into a fixed-length numeric
feature vector.  The features mirror what the paper's regressors use:
problem sizes (GEMM dimensions, element counts, byte counts), dtype width,
and -- for compiler-fused Triton kernels -- the number of primitive
instructions in the kernel body (Appendix B).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.hardware.kernel_cost import dtype_size

#: Order of features in the vector produced by :func:`kernel_features`.
FEATURE_NAMES: Sequence[str] = (
    "log_flops",
    "log_bytes",
    "log_m",
    "log_n",
    "log_k",
    "log_batch",
    "log_elements",
    "dtype_width",
    "dtype_code",
    "log_instructions",
    "arithmetic_intensity",
)

#: Distinct numerical formats: important because e.g. Volta GPUs run float16
#: on tensor cores but bfloat16 on the (much slower) FP32 pipeline, so two
#: kernels with identical shapes and byte widths can differ by almost an
#: order of magnitude in runtime.
_DTYPE_CODES = {
    "float16": 1.0,
    "half": 1.0,
    "bfloat16": 2.0,
    "float32": 3.0,
    "float": 3.0,
    "tf32": 4.0,
    "int8": 5.0,
    "uint8": 5.0,
}


def _log1p(value: float) -> float:
    return math.log1p(max(value, 0.0))


def kernel_features(params: Mapping[str, object]) -> np.ndarray:
    """Convert a kernel metadata dictionary into a feature vector."""
    flops = float(params.get("flops", 0.0) or 0.0)
    nbytes = float(params.get("bytes", 0.0) or 0.0)
    m = float(params.get("m", 0) or 0)
    n = float(params.get("n", 0) or 0)
    k = float(params.get("k", 0) or 0)
    batch = float(params.get("batch", 1) or 1)
    elements = float(params.get("elements", 0.0) or 0.0)
    instructions = float(params.get("instructions", 0.0) or 0.0)
    dtype = str(params.get("dtype", "float16"))
    width = float(dtype_size(dtype))
    dtype_code = _DTYPE_CODES.get(dtype, 6.0)
    intensity = flops / nbytes if nbytes > 0 else 0.0
    return np.array([
        _log1p(flops),
        _log1p(nbytes),
        _log1p(m),
        _log1p(n),
        _log1p(k),
        _log1p(batch),
        _log1p(elements),
        width,
        dtype_code,
        _log1p(instructions),
        _log1p(intensity),
    ], dtype=np.float64)


def feature_matrix(param_dicts: Sequence[Mapping[str, object]]) -> np.ndarray:
    """Stack feature vectors for many kernels into a matrix."""
    if not param_dicts:
        return np.zeros((0, len(FEATURE_NAMES)), dtype=np.float64)
    return np.vstack([kernel_features(params) for params in param_dicts])
