"""Profiling mode: generating kernel-runtime training data.

The paper's Maya offers a *profiling mode* that dispatches operations on real
hardware and logs each operation's arguments and observed runtime, which is
then used to train the runtime predictors (Section 4.3, Appendix B).  The
testbed here is the ground-truth cost model, so the profiler samples it --
adding measurement noise and per-invocation jitter -- over sweeps of
realistic kernel shapes (dense sweeps for the heavy-hitter GEMM/convolution
kernels, trace-style sweeps for the rest, exactly as Appendix B describes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.hardware.gpu_specs import GPUSpec
from repro.hardware.interconnect import InterconnectSpec
from repro.hardware.noise import stable_hash
from repro.hardware.kernel_cost import (
    CollectiveCostModel,
    KernelCostModel,
    dtype_size,
)

#: Kernel classes with dedicated dense microbenchmark sweeps (heavy hitters).
HEAVY_HITTER_CLASSES = (
    "gemm", "batched_gemm", "conv_forward", "conv_backward_data",
    "conv_backward_filter",
)

#: All kernel classes the default estimator suite is trained for.
DEFAULT_KERNEL_CLASSES = HEAVY_HITTER_CLASSES + (
    "attention", "fused_triton", "elementwise", "layernorm", "softmax",
    "dropout", "reduce", "embedding", "optimizer_apply", "cross_entropy",
    "index", "sort", "pool", "memset",
    "memcpy_h2d", "memcpy_d2h", "memcpy_d2d",
)


@dataclass
class ProfiledKernelDataset:
    """Profiled samples for one kernel class."""

    kernel_class: str
    params: List[Dict[str, object]]
    runtimes: np.ndarray

    def __len__(self) -> int:
        return len(self.params)

    def train_test_split(self, test_fraction: float = 0.2,
                         seed: int = 0) -> Tuple["ProfiledKernelDataset",
                                                 "ProfiledKernelDataset"]:
        """Random 80:20 split as used for the Table 7-9 MAPE numbers."""
        rng = np.random.default_rng(seed)
        indices = rng.permutation(len(self.params))
        cut = max(int(len(indices) * (1.0 - test_fraction)), 1)
        train_idx, test_idx = indices[:cut], indices[cut:]

        def subset(idx: np.ndarray) -> "ProfiledKernelDataset":
            return ProfiledKernelDataset(
                kernel_class=self.kernel_class,
                params=[self.params[i] for i in idx],
                runtimes=self.runtimes[idx],
            )

        return subset(train_idx), subset(test_idx)


class KernelProfiler:
    """Samples the testbed to build per-kernel-class training datasets."""

    def __init__(self, gpu: GPUSpec,
                 cost_model: KernelCostModel | None = None,
                 measurement_noise: float = 0.02,
                 seed: int = 0) -> None:
        self.gpu = gpu
        self.cost_model = cost_model or KernelCostModel()
        self.measurement_noise = measurement_noise
        self.seed = seed

    # ------------------------------------------------------------------
    # dataset generation
    # ------------------------------------------------------------------
    def profile_class(self, kernel_class: str,
                      n_samples: int = 300) -> ProfiledKernelDataset:
        """Generate ``n_samples`` profiled measurements of ``kernel_class``."""
        # NB: builtin hash() of strings is randomised per process, which made
        # the profiled datasets (and everything trained on them) vary from
        # run to run; the stable hash keeps them reproducible.
        rng = np.random.default_rng(
            self.seed + stable_hash(kernel_class) % 10_000)
        params = [self._sample_params(kernel_class, rng)
                  for _ in range(n_samples)]
        runtimes = np.array([
            self._measure(kernel_class, p, invocation=i, rng=rng)
            for i, p in enumerate(params)
        ])
        return ProfiledKernelDataset(kernel_class=kernel_class, params=params,
                                     runtimes=runtimes)

    def profile_default_classes(
        self, samples_per_class: int = 300, heavy_hitter_multiplier: int = 3
    ) -> Dict[str, ProfiledKernelDataset]:
        """Profile every default kernel class (Appendix B sweep sizes)."""
        datasets = {}
        for kernel_class in DEFAULT_KERNEL_CLASSES:
            count = samples_per_class
            if kernel_class in HEAVY_HITTER_CLASSES:
                count *= heavy_hitter_multiplier
            datasets[kernel_class] = self.profile_class(kernel_class, count)
        return datasets

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def _measure(self, kernel_class: str, params: Mapping[str, object],
                 invocation: int, rng: np.random.Generator) -> float:
        true_time = self.cost_model.kernel_time(self.gpu, kernel_class, params,
                                                invocation=invocation)
        noise = 1.0 + self.measurement_noise * rng.standard_normal()
        return max(true_time * max(noise, 0.5), 1e-7)

    # ------------------------------------------------------------------
    # shape sweeps
    # ------------------------------------------------------------------
    #: Hidden sizes, head counts and sequence lengths used to generate
    #: "trace-style" samples: shapes scraped from single-layer transformer
    #: runs over a range of batch sizes and TP degrees (Appendix B).
    _TRACE_HIDDEN = (1024, 2048, 2560, 4096, 5120, 6144, 8192, 12288)
    _TRACE_SEQ = (512, 1024, 2048, 4096)
    _TRACE_MICRO_BATCH = (1, 2, 4, 8, 16, 32, 64)
    _TRACE_TP = (1, 2, 4, 8)
    _TRACE_VOCAB = (32000, 51200)

    def _trace_gemm_shape(self, kernel_class: str,
                          rng: np.random.Generator) -> tuple:
        """Draw (m, n, k, batch) from realistic transformer GEMM shapes."""
        hidden = int(rng.choice(self._TRACE_HIDDEN))
        seq = int(rng.choice(self._TRACE_SEQ))
        micro_batch = int(rng.choice(self._TRACE_MICRO_BATCH))
        tp = int(rng.choice(self._TRACE_TP))
        tokens = micro_batch * seq
        ffn = 4 * hidden
        head_dim = 128 if hidden >= 4096 else 64
        heads = max(hidden // head_dim, 1)
        if kernel_class == "batched_gemm":
            batch = max(micro_batch * heads // tp, 1)
            if rng.random() < 0.5:
                return seq, seq, head_dim, batch          # QK^T
            return seq, head_dim, seq, batch              # attention * V
        choices = (
            (tokens, 3 * hidden // tp, hidden),            # QKV projection
            (tokens, hidden, hidden // tp),                # output projection
            (tokens, ffn // tp, hidden),                   # MLP fc1
            (tokens, hidden, ffn // tp),                   # MLP fc2
            (hidden, 3 * hidden // tp, tokens),            # QKV wgrad
            (ffn // tp, hidden, tokens),                   # fc1 wgrad
            (tokens, int(rng.choice(self._TRACE_VOCAB)) // tp, hidden),  # LM head
        )
        m, n, k = choices[rng.integers(0, len(choices))]
        return max(int(m), 1), max(int(n), 1), max(int(k), 1), 1

    def _sample_params(self, kernel_class: str,
                       rng: np.random.Generator) -> Dict[str, object]:
        dtype = str(rng.choice(["float16", "bfloat16", "float32"],
                               p=[0.45, 0.45, 0.10]))
        width = dtype_size(dtype)
        if kernel_class in ("gemm", "batched_gemm"):
            if rng.random() < 0.5:
                m, n, k, batch = self._trace_gemm_shape(kernel_class, rng)
            else:
                m = int(2 ** rng.uniform(4, 17.5))
                n = int(2 ** rng.uniform(4, 16))
                k = int(2 ** rng.uniform(4, 15))
                batch = (int(2 ** rng.uniform(0, 8.5))
                         if kernel_class == "batched_gemm" else 1)
            flops = 2.0 * m * n * k * batch
            nbytes = float(width * batch * (m * k + k * n + m * n))
            return {"m": m, "n": n, "k": k, "batch": batch, "flops": flops,
                    "bytes": nbytes, "dtype": dtype}
        if kernel_class.startswith("conv"):
            batch = int(2 ** rng.uniform(0, 7))
            cin = int(2 ** rng.uniform(4, 10))
            cout = int(2 ** rng.uniform(4, 11))
            spatial = int(2 ** rng.uniform(3, 8))
            ksize = int(rng.choice([1, 3, 5, 7]))
            flops = 2.0 * batch * spatial * spatial * cout * cin * ksize * ksize
            nbytes = float(width * (batch * cin * spatial ** 2
                                    + batch * cout * spatial ** 2
                                    + cin * cout * ksize ** 2))
            return {"flops": flops, "bytes": nbytes, "dtype": dtype,
                    "batch": batch, "m": batch * spatial * spatial, "n": cout,
                    "k": cin * ksize * ksize}
        if kernel_class == "attention":
            batch = int(2 ** rng.uniform(0, 6))
            seq = int(2 ** rng.uniform(7, 13))
            head_dim = int(rng.choice([64, 128]))
            heads = int(rng.choice([8, 16, 32]))
            flops = 4.0 * batch * heads * seq * seq * head_dim
            nbytes = float(width * batch * heads * seq * (3 * head_dim + seq))
            return {"flops": flops, "bytes": nbytes, "dtype": dtype,
                    "batch": batch * heads, "m": seq, "n": seq, "k": head_dim}
        if kernel_class == "fused_triton":
            elements = float(2 ** rng.uniform(8, 31))
            instructions = float(int(rng.uniform(2, 40)))
            return {"elements": elements, "instructions": instructions,
                    "flops": elements * instructions,
                    "bytes": elements * width * 2.0, "dtype": dtype}
        if kernel_class.startswith("memcpy") or kernel_class == "memset":
            nbytes = float(2 ** rng.uniform(8, 33))
            return {"bytes": nbytes, "dtype": "uint8"}
        # Generic memory-bound kernels: sweep the bytes moved, mixing a pure
        # log-uniform sweep with trace-style transformer activation sizes.
        if rng.random() < 0.4:
            hidden = int(rng.choice(self._TRACE_HIDDEN))
            seq = int(rng.choice(self._TRACE_SEQ))
            micro_batch = int(rng.choice(self._TRACE_MICRO_BATCH))
            tp = int(rng.choice(self._TRACE_TP))
            if kernel_class in ("softmax", "dropout") and rng.random() < 0.5:
                head_dim = 128 if hidden >= 4096 else 64
                heads = max(hidden // head_dim, 1)
                elements = float(micro_batch * heads // tp * seq * seq)
            else:
                elements = float(micro_batch * seq * hidden)
        else:
            elements = float(2 ** rng.uniform(6, 33))
        factor = {"layernorm": 3.0, "softmax": 2.5, "dropout": 2.5,
                  "cross_entropy": 1.0, "reduce": 1.0,
                  "optimizer_apply": 6.0}.get(kernel_class,
                                              float(rng.uniform(1.0, 3.5)))
        return {"elements": elements, "bytes": elements * width * factor,
                "dtype": dtype}


@dataclass
class ProfiledCollectiveSample:
    """One nccl-tests-style measurement of a collective."""

    op: str
    nranks: int
    nbytes: float
    intra_node: bool
    runtime: float


class CollectiveProfiler:
    """Generates nccl-tests-style sweeps of collective runtimes."""

    #: Collectives profiled by default (the paper notes fewer than 10 exist).
    DEFAULT_OPS = ("all_reduce", "reduce_scatter", "all_gather", "broadcast",
                   "all_to_all", "send", "recv")

    def __init__(self, interconnect: InterconnectSpec, gpus_per_node: int,
                 cost_model: CollectiveCostModel | None = None,
                 measurement_noise: float = 0.02, seed: int = 0) -> None:
        self.interconnect = interconnect
        self.gpus_per_node = gpus_per_node
        self.cost_model = cost_model or CollectiveCostModel()
        self.measurement_noise = measurement_noise
        self.seed = seed

    def profile(self, ops: Sequence[str] | None = None,
                rank_counts: Sequence[int] = (2, 4, 8, 16, 32, 64),
                sizes: Sequence[float] | None = None,
                repeats: int = 3) -> List[ProfiledCollectiveSample]:
        """Sweep message sizes from tens of MB down to KB, as in Appendix B."""
        ops = list(ops or self.DEFAULT_OPS)
        if sizes is None:
            sizes = [float(2 ** exp) for exp in range(12, 34, 2)]
        rng = np.random.default_rng(self.seed)
        samples: List[ProfiledCollectiveSample] = []
        invocation = 0
        for op in ops:
            for nranks in rank_counts:
                if op in ("send", "recv") and nranks != 2:
                    continue
                ranks_intra = list(range(min(nranks, self.gpus_per_node)))
                spans_node = nranks > self.gpus_per_node
                ranks = list(range(nranks))
                for nbytes in sizes:
                    for _ in range(repeats):
                        invocation += 1
                        bandwidth = self.interconnect.effective_bus_bandwidth(
                            ranks if spans_node else ranks_intra,
                            self.gpus_per_node)
                        latency = self.interconnect.base_latency(
                            ranks if spans_node else ranks_intra,
                            self.gpus_per_node)
                        true_time = self.cost_model.collective_time(
                            op=op, nbytes=nbytes, ranks=nranks,
                            bus_bandwidth=bandwidth, latency=latency,
                            invocation=invocation)
                        noise = 1.0 + self.measurement_noise * rng.standard_normal()
                        samples.append(ProfiledCollectiveSample(
                            op=op, nranks=nranks, nbytes=nbytes,
                            intra_node=not spans_node,
                            runtime=max(true_time * max(noise, 0.5), 1e-6)))
        return samples
