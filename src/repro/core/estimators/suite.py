"""Estimator suites: the bundle of per-kernel-class and collective estimators
Maya uses to annotate a collated trace.

The default ("learned") suite reproduces the paper's setup: one random-forest
regressor per kernel class, trained on profiled sweeps, plus a collective
estimator fitted to nccl-tests-style measurements.  Alternative suites --
oracle (true runtimes, Table 3) and purely analytical -- plug into the same
interface, demonstrating the pluggability the paper emphasises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.estimators.analytical import AnalyticalKernelEstimator
from repro.core.estimators.collective import (
    HierarchicalNetworkModel,
    ProfiledCollectiveEstimator,
)
from repro.core.estimators.features import feature_matrix, kernel_features
from repro.core.estimators.oracle import (
    OracleCollectiveEstimator,
    OracleKernelEstimator,
)
from repro.core.estimators.profiler import (
    CollectiveProfiler,
    KernelProfiler,
    ProfiledKernelDataset,
)
from repro.core.estimators.regression import (
    RandomForestRegressor,
    mean_absolute_percentage_error,
)
from repro.hardware.cluster import ClusterSpec
from repro.hardware.kernel_cost import CollectiveCostModel, KernelCostModel


class LearnedKernelEstimator:
    """Random-forest estimator for a single kernel class.

    The forest regresses the *residual* between the measured runtime and a
    roofline prior (in log space).  The prior captures the first-order
    dependence on problem size; the forest only has to learn the device's
    efficiency structure, which keeps per-shape errors small even with a few
    hundred profiled samples per kernel class.
    """

    def __init__(self, kernel_class: str, forest: RandomForestRegressor,
                 prior: AnalyticalKernelEstimator) -> None:
        self.kernel_class = kernel_class
        self.forest = forest
        self.prior = prior

    @staticmethod
    def train(dataset: ProfiledKernelDataset, prior: AnalyticalKernelEstimator,
              n_trees: int = 8, max_depth: int = 12,
              seed: int = 0) -> "LearnedKernelEstimator":
        features = feature_matrix(dataset.params)
        prior_times = np.array([
            prior.estimate(dataset.kernel_class, params)
            for params in dataset.params
        ])
        targets = (np.log(np.maximum(dataset.runtimes, 1e-9))
                   - np.log(np.maximum(prior_times, 1e-9)))
        forest = RandomForestRegressor(n_trees=n_trees, max_depth=max_depth,
                                       seed=seed)
        forest.fit(features, targets)
        return LearnedKernelEstimator(dataset.kernel_class, forest, prior)

    def estimate(self, kernel_class: str, params: Mapping[str, object]) -> float:
        features = kernel_features(params).reshape(1, -1)
        prior_time = self.prior.estimate(kernel_class, params)
        residual = float(self.forest.predict(features)[0])
        return float(np.exp(np.log(max(prior_time, 1e-9)) + residual))

    def validation_mape(self, dataset: ProfiledKernelDataset) -> float:
        """MAPE on a held-out dataset (the Table 7-9 metric)."""
        if len(dataset) == 0:
            return 0.0
        predicted = np.array([
            self.estimate(dataset.kernel_class, params)
            for params in dataset.params
        ])
        return mean_absolute_percentage_error(dataset.runtimes, predicted)


@dataclass
class EstimatorSuite:
    """Bundle of estimators used by the annotation stage of the pipeline."""

    name: str
    kernel_estimators: Dict[str, object] = field(default_factory=dict)
    fallback_kernel_estimator: Optional[object] = None
    collective_estimator: Optional[object] = None
    #: Held-out MAPE per kernel class (populated for learned suites).
    validation_mape: Dict[str, float] = field(default_factory=dict)

    def estimate_kernel(self, kernel_class: str,
                        params: Mapping[str, object]) -> float:
        estimator = self.kernel_estimators.get(kernel_class,
                                               self.fallback_kernel_estimator)
        if estimator is None:
            raise RuntimeError(
                f"no estimator available for kernel class '{kernel_class}'"
            )
        return max(float(estimator.estimate(kernel_class, params)), 1e-7)

    def estimate_collective(self, op: str, nbytes: float,
                            ranks: Sequence[int], gpus_per_node: int) -> float:
        if self.collective_estimator is None:
            raise RuntimeError("suite has no collective estimator")
        return max(float(self.collective_estimator.estimate_collective(
            op, nbytes, ranks, gpus_per_node)), 1e-7)


#: Cache of trained suites keyed by (cluster gpu, mode, samples, seed).
_SUITE_CACHE: Dict[tuple, EstimatorSuite] = {}


def build_estimator_suite(
    cluster: ClusterSpec,
    mode: str = "learned",
    samples_per_class: int = 224,
    seed: int = 0,
    kernel_cost_model: Optional[KernelCostModel] = None,
    collective_cost_model: Optional[CollectiveCostModel] = None,
    use_cache: bool = True,
) -> EstimatorSuite:
    """Build (and cache) an estimator suite for ``cluster``.

    Modes
    -----
    ``"learned"``
        Profile the testbed and train random-forest regressors (the paper's
        default configuration).
    ``"oracle"``
        Use ground-truth expected runtimes (Table 3's oracle rows).
    ``"analytical"``
        Roofline kernel estimates + hierarchical network model; no profiling
        required (the configuration used for hyperscale what-if studies).
    """
    key = (cluster.gpu.name, cluster.interconnect.intra_node.name,
           cluster.interconnect.inter_node.name, cluster.gpus_per_node,
           mode, samples_per_class, seed)
    if use_cache and key in _SUITE_CACHE:
        return _SUITE_CACHE[key]

    kernel_cost_model = kernel_cost_model or KernelCostModel()
    collective_cost_model = collective_cost_model or CollectiveCostModel()

    if mode == "oracle":
        suite = EstimatorSuite(
            name="oracle",
            fallback_kernel_estimator=OracleKernelEstimator(
                cluster.gpu, kernel_cost_model),
            collective_estimator=OracleCollectiveEstimator(
                cluster.interconnect, collective_cost_model),
        )
    elif mode == "analytical":
        suite = EstimatorSuite(
            name="analytical",
            fallback_kernel_estimator=AnalyticalKernelEstimator(cluster.gpu),
            collective_estimator=HierarchicalNetworkModel(cluster.interconnect),
        )
    elif mode == "learned":
        suite = _train_learned_suite(cluster, samples_per_class, seed,
                                     kernel_cost_model, collective_cost_model)
    else:
        raise ValueError(f"unknown estimator suite mode '{mode}'")

    if use_cache:
        _SUITE_CACHE[key] = suite
    return suite


def _train_learned_suite(
    cluster: ClusterSpec,
    samples_per_class: int,
    seed: int,
    kernel_cost_model: KernelCostModel,
    collective_cost_model: CollectiveCostModel,
) -> EstimatorSuite:
    profiler = KernelProfiler(cluster.gpu, cost_model=kernel_cost_model,
                              seed=seed)
    datasets = profiler.profile_default_classes(
        samples_per_class=samples_per_class)

    prior = AnalyticalKernelEstimator(cluster.gpu)
    kernel_estimators: Dict[str, object] = {}
    validation: Dict[str, float] = {}
    for kernel_class, dataset in datasets.items():
        train, test = dataset.train_test_split(seed=seed)
        estimator = LearnedKernelEstimator.train(train, prior, seed=seed)
        kernel_estimators[kernel_class] = estimator
        validation[kernel_class] = estimator.validation_mape(test)

    collective_profiler = CollectiveProfiler(
        cluster.interconnect, cluster.gpus_per_node,
        cost_model=collective_cost_model, seed=seed)
    rank_counts = sorted({2, 4, cluster.gpus_per_node,
                          min(cluster.world_size, 2 * cluster.gpus_per_node),
                          cluster.world_size})
    rank_counts = [count for count in rank_counts if count >= 2]
    collective_estimator = ProfiledCollectiveEstimator(cluster.gpus_per_node)
    collective_estimator.fit(collective_profiler.profile(rank_counts=rank_counts))

    return EstimatorSuite(
        name="learned",
        kernel_estimators=kernel_estimators,
        fallback_kernel_estimator=AnalyticalKernelEstimator(cluster.gpu),
        collective_estimator=collective_estimator,
        validation_mape=validation,
    )


def clear_suite_cache() -> None:
    """Drop all cached estimator suites (used by tests)."""
    _SUITE_CACHE.clear()
