"""Structure-of-arrays trace representation (the columnar engine core).

A :class:`ColumnarWorkerTrace` is a lossless re-encoding of one
:class:`~repro.core.trace.WorkerTrace` into flat numpy columns plus a small
deduplicated *template pool*:

* per-event **columns** hold everything that varies event to event -- the
  kind code, stream id, recorded duration, CUDA event / wait handles and
  record versions, structured host-delay call sequence numbers and the
  original per-worker ``seq`` -- as fixed-width integers and floats;
* the **template pool** holds everything that repeats -- ``api``,
  ``kernel_class``, ``device``, the params dict (minus the per-event
  varying keys) and the collective descriptor (minus its per-communicator
  sequence number).  A training iteration launches the same few dozen
  distinct operations thousands of times, so the pool stays tiny while the
  columns carry one int32 index per event.

Three consumers share the columns:

* the simulation engine's columnar inner loop
  (:func:`engine_program`, see :mod:`repro.core.simulator.engine`) dispatches
  on an int8-derived opcode list instead of ``TraceEventKind`` enum
  comparisons, with no per-event attribute or dict access;
* the collator's periodicity fingerprints (:func:`range_fingerprint`) hash
  precomputed per-template digests instead of re-walking event objects;
* the wire format (:func:`encode_worker_trace` / :func:`decode_worker_trace`)
  ships the raw little-endian column buffers plus the pickled template pool
  instead of a pickled ``TraceEvent`` object graph.

The representation is exact: decoding reproduces ``to_dict()`` /
``to_json()`` byte for byte (params and collective dicts are rebuilt in
their original key order), so content signatures and cached-artifact keys
computed from a decoded trace match the sender's.  The one deliberate
coercion is numeric width: durations round-trip through float64 and handle
ids through int64, which is lossless for everything the emulator emits
(hand-built traces using *integer* durations decode as the equal float).

Everything here degrades gracefully when numpy is unavailable:
:func:`columnar_worker_trace` returns ``None`` and every consumer falls back
to its per-object path.
"""

from __future__ import annotations

import pickle
import struct
import weakref
from typing import Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly by every test run
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

from repro.core.trace import TraceEvent, TraceEventKind, WorkerTrace
from repro.hardware.host_model import (
    HOST_MODEL_METADATA_KEY,
    _JITTER_FLOOR,
    dispatch_class_seed,
)

#: Whether the columnar fast paths are available in this process.
HAVE_NUMPY = _np is not None

#: Kind codes, in ``TraceEventKind`` declaration order (int8 column values).
KIND_CODES: Dict[TraceEventKind, int] = {
    kind: code for code, kind in enumerate(TraceEventKind)
}
KINDS_BY_CODE: Tuple[TraceEventKind, ...] = tuple(TraceEventKind)

K_KERNEL = KIND_CODES[TraceEventKind.KERNEL]
K_MEMCPY = KIND_CODES[TraceEventKind.MEMCPY]
K_MEMSET = KIND_CODES[TraceEventKind.MEMSET]
K_COLLECTIVE = KIND_CODES[TraceEventKind.COLLECTIVE]
K_HOST_DELAY = KIND_CODES[TraceEventKind.HOST_DELAY]
K_EVENT_RECORD = KIND_CODES[TraceEventKind.EVENT_RECORD]
K_STREAM_WAIT = KIND_CODES[TraceEventKind.STREAM_WAIT_EVENT]
K_EVENT_SYNC = KIND_CODES[TraceEventKind.EVENT_SYNCHRONIZE]
K_STREAM_SYNC = KIND_CODES[TraceEventKind.STREAM_SYNCHRONIZE]
K_DEVICE_SYNC = KIND_CODES[TraceEventKind.DEVICE_SYNCHRONIZE]
K_MARKER = KIND_CODES[TraceEventKind.MARKER]

# Flag bits (uint8 column) recording which optional fields were present on
# the original event, so decoding restores ``None`` vs ``0`` exactly.
F_DURATION = 1    #: ``event.duration`` was not None.
F_EVENT = 2       #: ``event.event`` was not None.
F_WAIT = 4        #: ``event.wait_event`` was not None.
F_VERSION = 8     #: ``params`` carried a ``"version"`` entry.
F_HOST_SEQ = 16   #: ``params`` carried a ``"seq"`` entry (structured delay).
F_COLL_SEQ = 32   #: the collective dict carried a ``"seq"`` entry.
F_REC_CREATE = 64   #: EVENT_RECORD with a truthy ``create`` param.
F_REC_DESTROY = 128  #: EVENT_RECORD with a truthy ``destroy`` param.

#: Params keys hoisted out of the template into per-event columns, by kind.
#: Every other kind keeps its params verbatim in the template, so template
#: identity remains exactly event-shape identity.
_VARYING_PARAMS: Dict[int, Tuple[str, ...]] = {
    K_HOST_DELAY: ("seq",),
    K_EVENT_RECORD: ("version",),
    K_STREAM_WAIT: ("version",),
    K_EVENT_SYNC: ("version",),
}

#: Column name -> little-endian dtype spec of the wire payload.  The specs
#: are explicit ``<``-prefixed so the encoded buffers are byte-identical
#: across host endianness.
COLUMN_DTYPES: Tuple[Tuple[str, str], ...] = (
    ("kind", "<i1"),
    ("flags", "<u1"),
    ("stream", "<i4"),
    ("template", "<i4"),
    ("version", "<i4"),
    ("host_class", "<i2"),
    ("duration", "<f8"),
    ("event_id", "<i8"),
    ("wait_event", "<i8"),
    ("aux_seq", "<i8"),
    ("seq", "<i8"),
)

#: First bytes of an encoded columnar payload.
PAYLOAD_MAGIC = b"MCOL"

_PAYLOAD_HEADER = struct.Struct("<4sI")

#: 64-bit FNV-1a constants for the fingerprint mixer.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


class ColumnarWorkerTrace:
    """Column view of one worker trace (see the module docstring).

    Column semantics (all length ``n``, positional -- index ``i`` describes
    ``trace.events[i]``):

    ``kind``
        int8 :class:`TraceEventKind` code in declaration order.
    ``flags``
        uint8 presence bits (``F_*`` constants above).
    ``stream``
        int32 stream id; ``-1`` encodes ``stream=None`` (which the engine
        maps to stream 0 but event signatures keep distinct).
    ``template``
        int32 index into :attr:`templates`.
    ``version``
        int32 record/wait version (``params["version"]``, 0 when absent).
    ``host_class``
        int16 index into :attr:`host_classes` for ``params["call_class"]``;
        ``-1`` when the event carries no call class.
    ``duration``
        float64 recorded duration (0.0 when absent; see ``F_DURATION``).
    ``event_id`` / ``wait_event``
        int64 CUDA event handles (0 when absent).
    ``aux_seq``
        int64 per-kind auxiliary sequence number: the structured host-delay
        jitter key (``params["seq"]``) or the collective's per-communicator
        sequence (``collective["seq"]``); ``-1`` when absent.
    ``seq``
        int64 original per-worker event sequence number (*not* necessarily
        ``i``: fold-truncated traces keep their original seqs).
    """

    __slots__ = ("n", "kind", "flags", "stream", "template", "version",
                 "host_class", "duration", "event_id", "wait_event",
                 "aux_seq", "seq", "templates", "host_classes",
                 "_lists", "_program", "_fingerprint_tables")

    def __init__(self, n: int, columns: Dict[str, Any],
                 templates: List[Dict[str, Any]],
                 host_classes: List[str]) -> None:
        self.n = n
        for name, _ in COLUMN_DTYPES:
            setattr(self, name, columns[name])
        #: Deduplicated event shapes; see :func:`_template_of`.
        self.templates = templates
        #: Deduplicated host-delay call-class strings.
        self.host_classes = host_classes
        self._lists: Optional[Dict[str, list]] = None
        self._program = None
        self._fingerprint_tables = None

    def lists(self) -> Dict[str, list]:
        """Python-list views of every column, memoized.

        The engine's inner loop and the fingerprint walk index single
        elements millions of times; plain-list indexing returns interned
        ints/floats without the numpy boxing cost, so the hot paths consume
        these instead of the arrays.
        """
        if self._lists is None:
            self._lists = {name: getattr(self, name).tolist()
                           for name, _ in COLUMN_DTYPES}
        return self._lists


def _template_of(event: TraceEvent, kind_code: int) -> Dict[str, Any]:
    """The deduplicatable shape of ``event`` (everything non-varying).

    ``params_layout`` / ``collective_layout`` record the original dict key
    order with per-event varying keys marked, so decoding rebuilds the dicts
    byte-identically (``to_json`` preserves insertion order).
    """
    varying = _VARYING_PARAMS.get(kind_code, ())
    params_layout = tuple(event.params.keys())
    params_fixed = {k: v for k, v in event.params.items() if k not in varying}
    collective_layout: Optional[Tuple[str, ...]] = None
    collective_fixed: Optional[Dict[str, Any]] = None
    if event.collective is not None:
        collective_layout = tuple(event.collective.keys())
        collective_fixed = {k: v for k, v in event.collective.items()
                            if k != "seq"}
    return {
        "api": event.api,
        "device": event.device,
        "kernel_class": event.kernel_class,
        "params_layout": params_layout,
        "params_fixed": params_fixed,
        "collective_layout": collective_layout,
        "collective_fixed": collective_fixed,
    }


def _template_key(kind_code: int, template: Dict[str, Any]) -> Tuple:
    """Hashable dedup key distinguishing value *types* too (``1`` vs ``1.0``
    are dict-equal but must not share a template: reprs differ and so do
    signatures)."""
    params = template["params_fixed"]
    coll = template["collective_fixed"]
    return (
        kind_code, template["api"], template["device"],
        template["kernel_class"], template["params_layout"],
        tuple((k, repr(params[k])) for k in sorted(params)),
        template["collective_layout"],
        None if coll is None else tuple((k, repr(coll[k]))
                                        for k in sorted(coll)),
    )


#: Per-trace memo of built columns, keyed by ``id(trace)`` (WorkerTrace is
#: an eq-dataclass, hence unhashable) with a weakref identity guard and
#: finalize-based eviction.  Kept off the trace instance so the
#: multi-kilobyte arrays never ride a pickled ``WorkerTrace`` through the
#: socket/process backends, and die with their trace.
_COLUMNS_MEMO: Dict[int, Tuple["weakref.ref", int, "ColumnarWorkerTrace"]] = {}


def _memoize_columns(trace: WorkerTrace, n: int,
                     cols: "ColumnarWorkerTrace") -> None:
    key = id(trace)
    _COLUMNS_MEMO[key] = (weakref.ref(trace), n, cols)
    weakref.finalize(trace, _COLUMNS_MEMO.pop, key, None)


def columnar_worker_trace(trace: WorkerTrace
                          ) -> Optional["ColumnarWorkerTrace"]:
    """Columnar view of ``trace``, memoized per trace instance.

    Returns ``None`` when numpy is unavailable.  The memo is keyed by
    ``len(trace.events)`` like the trace's own signature memos: traces are
    append-only (and fold truncation builds new instances), so a matching
    length means the cached columns are current.
    """
    if _np is None:
        return None
    cached = _COLUMNS_MEMO.get(id(trace))
    if cached is not None and cached[0]() is trace \
            and cached[1] == len(trace.events):
        return cached[2]

    events = trace.events
    n = len(events)
    kind = _np.empty(n, dtype=_np.int8)
    flags = _np.zeros(n, dtype=_np.uint8)
    stream = _np.empty(n, dtype=_np.int32)
    template = _np.empty(n, dtype=_np.int32)
    version = _np.zeros(n, dtype=_np.int32)
    host_class = _np.full(n, -1, dtype=_np.int16)
    duration = _np.zeros(n, dtype=_np.float64)
    event_id = _np.zeros(n, dtype=_np.int64)
    wait_event = _np.zeros(n, dtype=_np.int64)
    aux_seq = _np.full(n, -1, dtype=_np.int64)
    seq = _np.empty(n, dtype=_np.int64)

    templates: List[Dict[str, Any]] = []
    template_ids: Dict[Tuple, int] = {}
    host_classes: List[str] = []
    host_class_ids: Dict[str, int] = {}

    for i, event in enumerate(events):
        code = KIND_CODES[event.kind]
        kind[i] = code
        stream[i] = -1 if event.stream is None else event.stream
        seq[i] = event.seq
        bits = 0
        if event.duration is not None:
            bits |= F_DURATION
            duration[i] = event.duration
        if event.event is not None:
            bits |= F_EVENT
            event_id[i] = event.event
        if event.wait_event is not None:
            bits |= F_WAIT
            wait_event[i] = event.wait_event
        params = event.params
        if "version" in params:
            bits |= F_VERSION
            version[i] = int(params["version"])
        if code == K_HOST_DELAY and "seq" in params:
            bits |= F_HOST_SEQ
            aux_seq[i] = int(params["seq"])
        call_class = params.get("call_class")
        if call_class is not None:
            name = str(call_class)
            class_id = host_class_ids.get(name)
            if class_id is None:
                class_id = len(host_classes)
                host_classes.append(name)
                host_class_ids[name] = class_id
            host_class[i] = class_id
        if event.collective is not None and "seq" in event.collective:
            bits |= F_COLL_SEQ
            aux_seq[i] = int(event.collective["seq"])
        if code == K_EVENT_RECORD:
            if params.get("create"):
                bits |= F_REC_CREATE
            if params.get("destroy"):
                bits |= F_REC_DESTROY
        flags[i] = bits

        shape = _template_of(event, code)
        key = _template_key(code, shape)
        tid = template_ids.get(key)
        if tid is None:
            tid = len(templates)
            templates.append(shape)
            template_ids[key] = tid
        template[i] = tid

    columns = {"kind": kind, "flags": flags, "stream": stream,
               "template": template, "version": version,
               "host_class": host_class, "duration": duration,
               "event_id": event_id, "wait_event": wait_event,
               "aux_seq": aux_seq, "seq": seq}
    cols = ColumnarWorkerTrace(n, columns, templates, host_classes)
    _memoize_columns(trace, n, cols)
    return cols


# ----------------------------------------------------------------------
# engine program (opcode view consumed by the simulator's inner loop)
# ----------------------------------------------------------------------

# Engine opcodes.  Codes 0..5 form the contiguous "enqueue onto a device
# stream" group so the host loop tests one comparison instead of a kind
# tuple; event-handle create/destroy records compile to E_SKIP because the
# object engine never enqueues them.
E_KERNEL = 0
E_MEMCPY = 1
E_MEMSET = 2
E_COLLECTIVE = 3
E_RECORD = 4
E_WAIT = 5
E_HOST_DELAY = 6
E_MARKER = 7
E_EVENT_SYNC = 8
E_STREAM_SYNC = 9
E_DEVICE_SYNC = 10
E_SKIP = 11

_KIND_TO_OPCODE = {
    K_KERNEL: E_KERNEL,
    K_MEMCPY: E_MEMCPY,
    K_MEMSET: E_MEMSET,
    K_COLLECTIVE: E_COLLECTIVE,
    K_EVENT_RECORD: E_RECORD,
    K_STREAM_WAIT: E_WAIT,
    K_HOST_DELAY: E_HOST_DELAY,
    K_MARKER: E_MARKER,
    K_EVENT_SYNC: E_EVENT_SYNC,
    K_STREAM_SYNC: E_STREAM_SYNC,
    K_DEVICE_SYNC: E_DEVICE_SYNC,
}


class EngineProgram:
    """Positional opcode/operand lists derived from one columnar trace.

    Plain Python lists, not arrays: the engine reads single elements in a
    tight loop, where list indexing beats numpy scalar extraction by ~3x.
    """

    __slots__ = ("n", "codes", "streams", "seqs", "durations", "ekeys",
                 "labels")

    def __init__(self, cols: ColumnarWorkerTrace) -> None:
        lists = cols.lists()
        kind = lists["kind"]
        flags = lists["flags"]
        n = cols.n
        self.n = n
        codes = [0] * n
        #: Stream operand with the engine's ``None -> 0`` default applied.
        streams = lists["stream"][:]
        self.seqs = lists["seq"]
        #: Recorded durations with the engine's ``None -> 0.0`` default
        #: (fold replays read these for structured host delays).
        self.durations = lists["duration"]
        ekeys: List[Optional[Tuple[int, int]]] = [None] * n
        labels: List[Optional[str]] = [None] * n
        event_ids = lists["event_id"]
        wait_ids = lists["wait_event"]
        versions = lists["version"]
        templates = cols.templates
        template_ids = lists["template"]
        for i in range(n):
            code = _KIND_TO_OPCODE[kind[i]]
            if code == E_RECORD:
                if flags[i] & (F_REC_CREATE | F_REC_DESTROY):
                    code = E_SKIP
                else:
                    ekeys[i] = (event_ids[i], versions[i])
            elif code in (E_WAIT, E_EVENT_SYNC):
                ekeys[i] = (wait_ids[i], versions[i])
            elif code == E_MARKER:
                params = templates[template_ids[i]]["params_fixed"]
                labels[i] = str(params.get("label", ""))
            codes[i] = code
            if streams[i] < 0:
                streams[i] = 0
        self.codes = codes
        self.streams = streams
        self.ekeys = ekeys
        self.labels = labels


def engine_program(cols: ColumnarWorkerTrace) -> EngineProgram:
    """Engine opcode view of ``cols``, memoized on the columns."""
    program = cols._program
    if program is None:
        program = EngineProgram(cols)
        cols._program = program
    return program


# ----------------------------------------------------------------------
# vectorized host-delay materialization
# ----------------------------------------------------------------------

def _fast_noise_array(seeds, scale: float):
    """Vectorized :func:`repro.hardware.noise.fast_noise`, bit-identical.

    ``seeds`` is a uint64 array; every operation below mirrors the scalar
    splitmix64 mix (uint64 wrap-around equals the scalar's explicit 64-bit
    masking) and the float expression keeps the scalar's exact evaluation
    order, so each lane equals ``fast_noise(int(seed), scale)`` bit for bit.
    """
    z = seeds + _np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> _np.uint64(31))
    uniform = z / float(2 ** 64)
    return 1.0 + scale * 3.4641016151377544 * (uniform - 0.5)


def materialize_host_delays(cols: ColumnarWorkerTrace,
                            metadata: Dict[str, Any],
                            size: int) -> Optional[List[float]]:
    """Seq-indexed replayed host-delay durations, vectorized.

    Equivalent, element for element, to running
    :func:`repro.hardware.host_model.host_delay_materializer` over every
    ``HOST_DELAY`` event and scattering the results into a ``size``-long
    per-seq array (the shape provider annotation consumes).  Returns
    ``None`` when numpy is unavailable.
    """
    if _np is None:
        return None
    out = _np.zeros(size, dtype=_np.float64)
    idx = _np.nonzero(cols.kind == K_HOST_DELAY)[0]
    if idx.size:
        values = cols.duration[idx].copy()
        profile = metadata.get(HOST_MODEL_METADATA_KEY) or {}
        scale = float(profile.get("jitter", 0.0))
        structured = (cols.flags[idx] & F_HOST_SEQ) != 0
        if scale > 0.0 and structured.any():
            host_name = str(profile.get("name", ""))
            sidx = idx[structured]
            class_ids = cols.host_class[sidx].astype(_np.int64)
            misc_seed = _np.uint64(dispatch_class_seed(host_name, "misc"))
            if cols.host_classes:
                class_seeds = _np.array(
                    [dispatch_class_seed(host_name, name)
                     for name in cols.host_classes],
                    dtype=_np.uint64)
                seeds = _np.where(class_ids >= 0,
                                  class_seeds[_np.maximum(class_ids, 0)],
                                  misc_seed)
            else:
                seeds = _np.full(sidx.size, misc_seed, dtype=_np.uint64)
            seeds = seeds + cols.aux_seq[sidx].astype(_np.uint64)
            factor = _np.maximum(_fast_noise_array(seeds, scale),
                                 _JITTER_FLOOR)
            values[structured] = cols.duration[sidx] * factor
        out[cols.seq[idx]] = values
    return out.tolist()


# ----------------------------------------------------------------------
# periodicity fingerprints (consumed by repro.core.collator)
# ----------------------------------------------------------------------

class _FingerprintTables:
    """Per-template digests for :func:`range_fingerprint`, built once."""

    __slots__ = ("shape_fp", "coll_fp", "label_fp", "is_iter_marker")

    def __init__(self, cols: ColumnarWorkerTrace, kind_of_template,
                 iteration_marker) -> None:
        from repro.hardware.noise import stable_hash

        count = len(cols.templates)
        self.shape_fp = [0] * count
        self.coll_fp = [0] * count
        self.label_fp = [0] * count
        self.is_iter_marker = [False] * count
        for tid, template in enumerate(cols.templates):
            kind_code = kind_of_template[tid]
            params = dict(template["params_fixed"])
            # Exactly TraceEvent.signature()'s fields minus the stream
            # (mixed in per event from the column).  For the kinds that
            # reach the collator's plain-event branch no params key is
            # hoisted into a column, so the template params are the full
            # params and this digest equals the signature's.
            params_key = tuple(sorted(
                (k, v) for k, v in params.items()
                if k not in ("free", "total")))
            coll = template["collective_fixed"]
            collective_key: Tuple = ()
            if coll is not None:
                collective_key = (coll.get("op"), coll.get("nranks"),
                                  coll.get("comm_tag"))
            kind_value = KINDS_BY_CODE[kind_code].value
            self.shape_fp[tid] = stable_hash(
                (kind_value, template["api"], template["kernel_class"],
                 params_key, collective_key))
            if kind_code == K_COLLECTIVE:
                info = coll or {}
                self.coll_fp[tid] = stable_hash(
                    str(info.get("op")), str(info.get("comm_tag")),
                    tuple(info.get("ranks", ())), int(info.get("peer", -1)),
                    float(params.get("bytes", 0.0)))
            elif kind_code == K_MARKER:
                label = str(params.get("label", ""))
                if iteration_marker.match(label):
                    self.is_iter_marker[tid] = True
                else:
                    self.label_fp[tid] = stable_hash(label)


def _fingerprint_tables(cols: ColumnarWorkerTrace,
                        iteration_marker) -> _FingerprintTables:
    tables = cols._fingerprint_tables
    if tables is None:
        lists = cols.lists()
        kinds = lists["kind"]
        kind_of_template = {}
        for i, tid in enumerate(lists["template"]):
            if tid not in kind_of_template:
                kind_of_template[tid] = kinds[i]
        tables = _FingerprintTables(cols, kind_of_template, iteration_marker)
        cols._fingerprint_tables = tables
    return tables


def range_fingerprint(cols: ColumnarWorkerTrace, lo: int, hi: int,
                      iteration_marker) -> Optional[int]:
    """Columnar twin of the collator's ``_canonical_range_fingerprint``.

    Preserves that function's *equality semantics* exactly -- two ranges
    produce equal fingerprints iff the object walk would (records numbered
    serially, waits resolved to local record serials with cross-window
    references yielding ``None``, structured host delays hashed by call
    class + base cost, and so on) -- but not its values: fingerprints are
    only ever compared to other fingerprints of the same trace within one
    process, so this path swaps the per-event blake2b chain for an FNV-1a
    mix over per-template digests.  Distinct case tags keep the branches
    collision-disjoint.
    """
    tables = _fingerprint_tables(cols, iteration_marker)
    shape_fp = tables.shape_fp
    coll_fp = tables.coll_fp
    label_fp = tables.label_fp
    is_iter = tables.is_iter_marker
    lists = cols.lists()
    kinds = lists["kind"]
    flags = lists["flags"]
    streams = lists["stream"]
    templates = lists["template"]
    versions = lists["version"]
    event_ids = lists["event_id"]
    wait_ids = lists["wait_event"]
    durations = lists["duration"]
    host_classes = lists["host_class"]

    h = _FNV_OFFSET
    local_records: Dict[Tuple[int, int], int] = {}
    serial = 0
    for i in range(lo, hi):
        kind = kinds[i]
        if kind == K_HOST_DELAY:
            if flags[i] & F_HOST_SEQ:
                h = ((h ^ 1) * _FNV_PRIME) & _MASK64
                h = ((h ^ (host_classes[i] & _MASK64)) * _FNV_PRIME) & _MASK64
            else:
                h = ((h ^ 2) * _FNV_PRIME) & _MASK64
            h = ((h ^ (hash(durations[i]) & _MASK64)) * _FNV_PRIME) & _MASK64
            continue
        if kind == K_MARKER:
            tid = templates[i]
            if is_iter[tid]:
                h = ((h ^ 3) * _FNV_PRIME) & _MASK64
            else:
                h = ((h ^ 4) * _FNV_PRIME) & _MASK64
                h = ((h ^ label_fp[tid]) * _FNV_PRIME) & _MASK64
            continue
        if kind == K_EVENT_RECORD:
            bits = flags[i]
            if bits & F_REC_CREATE:
                h = ((h ^ 5) * _FNV_PRIME) & _MASK64
                continue
            if bits & F_REC_DESTROY:
                h = ((h ^ 6) * _FNV_PRIME) & _MASK64
                continue
            local_records[(event_ids[i], versions[i])] = serial
            h = ((h ^ 7) * _FNV_PRIME) & _MASK64
            h = ((h ^ serial) * _FNV_PRIME) & _MASK64
            h = ((h ^ (streams[i] & _MASK64)) * _FNV_PRIME) & _MASK64
            serial += 1
            continue
        if kind == K_STREAM_WAIT or kind == K_EVENT_SYNC:
            version = versions[i]
            if version == 0:
                h = ((h ^ 8) * _FNV_PRIME) & _MASK64
            else:
                reference = local_records.get((wait_ids[i], version))
                if reference is None:
                    return None  # waits on a record from another window
                h = ((h ^ 9) * _FNV_PRIME) & _MASK64
                h = ((h ^ reference) * _FNV_PRIME) & _MASK64
            h = ((h ^ kind) * _FNV_PRIME) & _MASK64
            h = ((h ^ (streams[i] & _MASK64)) * _FNV_PRIME) & _MASK64
            continue
        if kind == K_COLLECTIVE:
            h = ((h ^ 10) * _FNV_PRIME) & _MASK64
            h = ((h ^ coll_fp[templates[i]]) * _FNV_PRIME) & _MASK64
            h = ((h ^ (streams[i] & _MASK64)) * _FNV_PRIME) & _MASK64
            continue
        h = ((h ^ 11) * _FNV_PRIME) & _MASK64
        h = ((h ^ shape_fp[templates[i]]) * _FNV_PRIME) & _MASK64
        h = ((h ^ (streams[i] & _MASK64)) * _FNV_PRIME) & _MASK64
    return h


# ----------------------------------------------------------------------
# wire payload (consumed by repro.service.wire)
# ----------------------------------------------------------------------

def encode_worker_trace(trace: WorkerTrace) -> Optional[bytes]:
    """Serialize ``trace`` as template pool + raw little-endian columns.

    Layout: ``b"MCOL"`` + u32 header length + pickled header (trace fields,
    template pool, call-class pool, event count and the ``(name, dtype)``
    column specs) + the concatenated column buffers in spec order.  Returns
    ``None`` when numpy is unavailable (callers fall back to plain pickle).
    """
    cols = columnar_worker_trace(trace)
    if cols is None:
        return None
    header = pickle.dumps({
        "rank": trace.rank,
        "device": trace.device,
        "peak_memory_bytes": trace.peak_memory_bytes,
        "oom": trace.oom,
        "metadata": trace.metadata,
        "templates": cols.templates,
        "host_classes": cols.host_classes,
        "n": cols.n,
        "columns": COLUMN_DTYPES,
    }, protocol=pickle.HIGHEST_PROTOCOL)
    parts = [_PAYLOAD_HEADER.pack(PAYLOAD_MAGIC, len(header)), header]
    for name, dtype in COLUMN_DTYPES:
        parts.append(getattr(cols, name).astype(dtype).tobytes())
    return b"".join(parts)


def decode_worker_trace(payload: bytes) -> WorkerTrace:
    """Rebuild the :class:`WorkerTrace` encoded by :func:`encode_worker_trace`.

    Reconstruction is exact (``to_dict()``-equal, hence ``to_json``- and
    signature-equal); the decoded columns are installed as the new trace's
    columnar memo so the receiving simulator skips the rebuild.
    """
    if _np is None:  # pragma: no cover - senders negotiate the format
        raise RuntimeError("columnar payloads require numpy to decode")
    magic, header_len = _PAYLOAD_HEADER.unpack_from(payload, 0)
    if magic != PAYLOAD_MAGIC:
        raise ValueError(f"bad columnar payload magic {magic!r}")
    offset = _PAYLOAD_HEADER.size
    header = pickle.loads(payload[offset:offset + header_len])
    offset += header_len
    n = header["n"]
    columns: Dict[str, Any] = {}
    for name, dtype in header["columns"]:
        width = _np.dtype(dtype).itemsize
        chunk = payload[offset:offset + n * width]
        offset += n * width
        # Slicing copies, so the array is aligned and owns its memory;
        # the native byte order keeps downstream math fast on any host.
        columns[name] = _np.frombuffer(chunk, dtype=dtype).astype(
            _np.dtype(dtype).newbyteorder("="))
    templates = header["templates"]
    cols = ColumnarWorkerTrace(n, columns, templates,
                               header["host_classes"])
    lists = cols.lists()
    kinds = lists["kind"]
    flags = lists["flags"]
    streams = lists["stream"]
    template_ids = lists["template"]
    versions = lists["version"]
    durations = lists["duration"]
    event_ids = lists["event_id"]
    wait_ids = lists["wait_event"]
    aux_seqs = lists["aux_seq"]
    seqs = lists["seq"]

    events: List[TraceEvent] = []
    for i in range(n):
        code = kinds[i]
        bits = flags[i]
        template = templates[template_ids[i]]
        varying = _VARYING_PARAMS.get(code, ())
        fixed = template["params_fixed"]
        params: Dict[str, Any] = {}
        for key in template["params_layout"]:
            if key in varying:
                if key == "version":
                    if bits & F_VERSION:
                        params[key] = versions[i]
                elif bits & F_HOST_SEQ:
                    params[key] = aux_seqs[i]
            else:
                params[key] = fixed[key]
        collective: Optional[Dict[str, Any]] = None
        if template["collective_layout"] is not None:
            coll_fixed = template["collective_fixed"]
            collective = {}
            for key in template["collective_layout"]:
                if key == "seq":
                    if bits & F_COLL_SEQ:
                        collective[key] = aux_seqs[i]
                else:
                    collective[key] = coll_fixed[key]
        event = TraceEvent(
            kind=KINDS_BY_CODE[code],
            api=template["api"],
            device=template["device"],
            stream=None if streams[i] < 0 else streams[i],
            kernel_class=template["kernel_class"],
            params=params,
            collective=collective,
            event=event_ids[i] if bits & F_EVENT else None,
            wait_event=wait_ids[i] if bits & F_WAIT else None,
            duration=durations[i] if bits & F_DURATION else None,
            seq=seqs[i],
        )
        events.append(event)
    trace = WorkerTrace(
        rank=header["rank"],
        device=header["device"],
        peak_memory_bytes=header["peak_memory_bytes"],
        oom=header["oom"],
        metadata=header["metadata"],
    )
    trace.events = events  # assign: append() would renumber seqs
    _memoize_columns(trace, n, cols)
    return trace
