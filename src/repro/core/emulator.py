"""Transparent device emulation.

:class:`DeviceEmulator` is Maya's virtual runtime for one worker: it owns a
:class:`~repro.cuda.runtime.CudaRuntime`, registers itself as the API
interceptor and converts every intercepted call into trace events.  Two
events are produced per call:

* a ``HOST_DELAY`` event carrying the *deterministic* host-side cost of
  dispatching the call (``HostModel.base_cost``) plus, in ``params``, the
  call class and the per-worker call sequence number -- the paper measures
  this delta between API calls during emulation and replays it in the
  simulator; the per-call jitter term is synthesised by the simulation
  engine at replay time from the host-model profile recorded in the trace
  metadata, so iteration windows stay canonically periodic in the trace
  while replay remains bit-identical to baking the jitter in here, and
* for device work and synchronisation primitives, the device-side event
  itself (kernel, memcpy, collective, event record, stream wait, ...).

:class:`EmulationSession` orchestrates per-rank emulators for a whole job,
catching out-of-memory failures so that OOM configurations are reported
rather than crashing the search (Section 5.2 relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.cuda.api_records import ApiCallRecord, ApiKind
from repro.cuda.errors import CudaError, CudaOutOfMemoryError
from repro.cuda.runtime import CudaRuntime
from repro.core.trace import JobTrace, TraceEvent, TraceEventKind, WorkerTrace
from repro.hardware.cluster import ClusterSpec
from repro.hardware.gpu_specs import GPUSpec
from repro.hardware.host_model import HOST_MODEL_METADATA_KEY, HostModel

#: Maps API-call kinds onto trace-event kinds for device-visible operations.
_KIND_MAP = {
    ApiKind.KERNEL: TraceEventKind.KERNEL,
    ApiKind.MEMCPY: TraceEventKind.MEMCPY,
    ApiKind.MEMSET: TraceEventKind.MEMSET,
    ApiKind.COLLECTIVE: TraceEventKind.COLLECTIVE,
    ApiKind.EVENT_RECORD: TraceEventKind.EVENT_RECORD,
    ApiKind.STREAM_WAIT_EVENT: TraceEventKind.STREAM_WAIT_EVENT,
    ApiKind.EVENT_SYNCHRONIZE: TraceEventKind.EVENT_SYNCHRONIZE,
    ApiKind.STREAM_SYNCHRONIZE: TraceEventKind.STREAM_SYNCHRONIZE,
    ApiKind.DEVICE_SYNCHRONIZE: TraceEventKind.DEVICE_SYNCHRONIZE,
}

#: API-call kinds that only contribute host overhead (no trace event).
_HOST_ONLY_KINDS = {ApiKind.MALLOC, ApiKind.FREE, ApiKind.QUERY,
                    ApiKind.STREAM, ApiKind.LIBRARY}


def _host_call_class(record: ApiCallRecord) -> str:
    """Dispatch-cost class used by the host model for this API call."""
    if record.kind is ApiKind.KERNEL:
        kernel_class = record.kernel_class or ""
        if kernel_class in ("gemm", "batched_gemm"):
            return "gemm"
        if kernel_class.startswith("conv"):
            return "conv"
        if kernel_class == "optimizer_apply":
            return "optimizer"
        return "kernel_launch"
    return {
        ApiKind.MEMCPY: "memcpy",
        ApiKind.MEMSET: "memset",
        ApiKind.MALLOC: "malloc",
        ApiKind.FREE: "free",
        ApiKind.COLLECTIVE: "collective",
        ApiKind.EVENT_RECORD: "event",
        ApiKind.STREAM_WAIT_EVENT: "event",
        ApiKind.EVENT_SYNCHRONIZE: "sync",
        ApiKind.STREAM_SYNCHRONIZE: "sync",
        ApiKind.DEVICE_SYNCHRONIZE: "sync",
        ApiKind.STREAM: "stream",
        ApiKind.QUERY: "misc",
        ApiKind.LIBRARY: "misc",
    }.get(record.kind, "misc")


class DeviceEmulator:
    """Maya's virtual device runtime for a single worker."""

    def __init__(
        self,
        rank: int,
        device: int,
        gpu: GPUSpec,
        host_model: Optional[HostModel] = None,
        record_host_delays: bool = True,
    ) -> None:
        self.rank = rank
        self.device = device
        self.gpu = gpu
        self.host_model = host_model or HostModel()
        self.record_host_delays = record_host_delays
        self.trace = WorkerTrace(rank=rank, device=device)
        if record_host_delays:
            # Replay-side jitter synthesis needs the seed namespace and the
            # jitter magnitude of the model that produced the base costs.
            self.trace.metadata[HOST_MODEL_METADATA_KEY] = \
                self.host_model.trace_profile()
        self.runtime = CudaRuntime(device=device, gpu=gpu,
                                   interceptor=self._intercept)
        self._call_counter = 0

    # ------------------------------------------------------------------
    # interception
    # ------------------------------------------------------------------
    def _intercept(self, record: ApiCallRecord) -> None:
        self._call_counter += 1
        if self.record_host_delays:
            call_class = _host_call_class(record)
            # Record only the deterministic base cost; "seq" lets the
            # simulation engine re-apply this call's jitter factor at
            # replay time (bit-identical to jittering here).
            self.trace.append(TraceEvent(
                kind=TraceEventKind.HOST_DELAY,
                api="hostDelay",
                device=self.device,
                duration=self.host_model.base_cost(call_class),
                params={"call_class": call_class, "after": record.api,
                        "seq": self._call_counter},
            ))
        if record.kind in _HOST_ONLY_KINDS:
            return
        kind = _KIND_MAP.get(record.kind)
        if kind is None:
            return
        self.trace.append(TraceEvent(
            kind=kind,
            api=record.api,
            device=self.device,
            stream=record.stream,
            kernel_class=record.kernel_class,
            params=dict(record.params),
            collective=dict(record.collective) if record.collective else None,
            event=record.event,
            wait_event=record.wait_event,
        ))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def mark(self, label: str) -> None:
        """Insert a marker event (iteration boundaries, phases...)."""
        self.trace.append(TraceEvent(
            kind=TraceEventKind.MARKER, api="marker", device=self.device,
            params={"label": label},
        ))

    def finalize(self) -> WorkerTrace:
        """Record end-of-emulation statistics and return the trace."""
        self.trace.peak_memory_bytes = self.runtime.memory.peak_allocated
        self.trace.metadata.setdefault("kernel_count", self.runtime.kernel_count)
        self.trace.metadata.setdefault("api_calls", self._call_counter)
        return self.trace


#: Signature of a per-rank workload body: receives the rank and its emulator.
WorkerFn = Callable[[int, DeviceEmulator], None]


@dataclass
class EmulationResult:
    """Output of an emulation session."""

    job_trace: JobTrace
    oom: bool
    #: Ranks whose emulation raised an error other than OOM (should be empty).
    failed_ranks: Dict[int, str]


class EmulationSession:
    """Runs per-rank emulation for a whole distributed job.

    The paper launches one OS process per rank; this reproduction runs ranks
    sequentially in-process, which preserves the captured API streams (DLT
    control flow does not depend on peers' data).
    """

    def __init__(self, cluster: ClusterSpec,
                 host_model: Optional[HostModel] = None) -> None:
        self.cluster = cluster
        self.host_model = host_model or cluster.host

    def create_emulator(self, rank: int) -> DeviceEmulator:
        return DeviceEmulator(
            rank=rank,
            device=self.cluster.local_rank(rank),
            gpu=self.cluster.gpu,
            host_model=self.host_model,
        )

    def run(
        self,
        worker_fn: WorkerFn,
        ranks: Optional[Sequence[int]] = None,
        world_size: Optional[int] = None,
        stop_on_oom: bool = True,
    ) -> EmulationResult:
        """Emulate ``worker_fn`` for every rank in ``ranks``.

        Parameters
        ----------
        worker_fn:
            Callable executed once per emulated rank.  It receives the global
            rank and its :class:`DeviceEmulator` and issues device API calls
            through ``emulator.runtime`` (usually via the mini framework).
        ranks:
            Ranks to emulate.  Defaults to every rank in the cluster; the
            selective-launch optimisation of Section 7.4 passes a subset.
        world_size:
            Logical world size recorded in the job trace (defaults to the
            cluster size).
        stop_on_oom:
            When true, the first OOM aborts remaining ranks -- all ranks run
            the same memory footprint, so one OOM condemns the config.
        """
        world = world_size if world_size is not None else self.cluster.world_size
        target_ranks = list(ranks) if ranks is not None else list(range(world))
        job = JobTrace(world_size=world)
        failed: Dict[int, str] = {}
        oom = False

        for rank in target_ranks:
            emulator = self.create_emulator(rank)
            try:
                worker_fn(rank, emulator)
            except CudaOutOfMemoryError as exc:
                emulator.trace.oom = True
                emulator.trace.metadata["oom_message"] = str(exc)
                oom = True
            except CudaError as exc:  # pragma: no cover - defensive
                failed[rank] = str(exc)
            trace = emulator.finalize()
            job.add_worker(trace)
            if oom and stop_on_oom:
                break

        job.metadata["cluster"] = self.cluster.name
        job.metadata["emulated_rank_count"] = len(job.emulated_ranks)
        return EmulationResult(job_trace=job, oom=oom, failed_ranks=failed)
