"""Simulation reports.

The simulator's output mirrors the "Simulation Report" box of Figure 5:
total batch (iteration) time, communication time, peak memory usage, plus
per-rank busy-time breakdowns that the analysis module uses for MFU, cost
and bottleneck attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RankReport:
    """Busy-time breakdown for a single simulated rank."""

    rank: int
    compute_time: float = 0.0
    communication_time: float = 0.0
    exposed_communication_time: float = 0.0
    host_time: float = 0.0
    memcpy_time: float = 0.0
    finish_time: float = 0.0
    kernel_count: int = 0
    collective_count: int = 0


@dataclass
class SimulationReport:
    """Job-level output of one simulation."""

    total_time: float
    iterations: int = 1
    rank_reports: Dict[int, RankReport] = field(default_factory=dict)
    peak_memory_bytes: int = 0
    oom: bool = False
    #: Marker label -> per-rank timestamps (iteration boundaries etc.).
    markers: Dict[str, Dict[int, float]] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def iteration_time(self) -> float:
        """Time of a single training iteration."""
        if self.iterations <= 1:
            return self.total_time
        return self.total_time / self.iterations

    @property
    def communication_time(self) -> float:
        """Largest per-rank communication busy time (the paper's metric)."""
        if not self.rank_reports:
            return 0.0
        return max(report.communication_time
                   for report in self.rank_reports.values())

    @property
    def mean_communication_time(self) -> float:
        if not self.rank_reports:
            return 0.0
        values = [report.communication_time
                  for report in self.rank_reports.values()]
        return sum(values) / len(values)

    @property
    def compute_time(self) -> float:
        """Largest per-rank compute busy time."""
        if not self.rank_reports:
            return 0.0
        return max(report.compute_time for report in self.rank_reports.values())

    @property
    def peak_memory_gb(self) -> float:
        return self.peak_memory_bytes / (1024 ** 3)

    def busy_fraction(self, rank: Optional[int] = None) -> float:
        """Fraction of wall-clock time a rank's compute stream was busy."""
        if self.total_time <= 0 or not self.rank_reports:
            return 0.0
        if rank is None:
            rank = max(self.rank_reports,
                       key=lambda r: self.rank_reports[r].compute_time)
        report = self.rank_reports[rank]
        return min(report.compute_time / self.total_time, 1.0)

    def summary_rows(self) -> List[Dict[str, object]]:
        """Flat rows convenient for printing benchmark tables."""
        return [
            {
                "rank": report.rank,
                "compute_s": round(report.compute_time, 6),
                "comm_s": round(report.communication_time, 6),
                "host_s": round(report.host_time, 6),
                "finish_s": round(report.finish_time, 6),
            }
            for report in sorted(self.rank_reports.values(),
                                 key=lambda item: item.rank)
        ]
