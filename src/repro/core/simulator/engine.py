"""Discrete-event cluster simulator (Algorithms 1-2 of the paper).

The engine replays a collated job trace against a cluster specification:

* each simulated rank has a **host dispatch queue** that walks its trace in
  program order, paying the measured host delays (structured ``HOST_DELAY``
  events record only the deterministic base cost; the engine materializes
  the per-call jitter factor at replay time -- same seed, same call seq,
  same multiply as pre-split emulators, so per-event replay is
  bit-identical to traces that baked the jitter in), enqueueing device work
  onto streams and blocking on synchronisation calls;
* each (rank, stream) pair is a FIFO **execution stream** that runs kernels,
  copies and collectives one at a time;
* CUDA events and collectives are resolved through the wait maps of
  Algorithm 3, which is where pipeline bubbles and compute/communication
  overlap emerge from first principles.

Durations come from a pluggable :class:`DurationProvider`; the engine itself
is shared between Maya's prediction path and the testbed reference model.

Two optimizations keep the engine fast: the first never changes a produced
number; the second is exact up to rounding-level period drift except on
structured jittered host delays, where it commits a documented, bounded
analytic approximation:

* **Pre-annotated duration arrays** -- when the provider implements
  ``annotate_trace`` (both built-in providers do), every kernel/collective
  duration and communicator group is resolved once per (collated trace,
  provider) into flat per-rank arrays, so the inner event loop does
  integer-indexed reads instead of per-event ``signature()`` / dict /
  provider calls.  Disable with ``SimulationConfig.use_annotations=False``.
* **Steady-state iteration folding** -- when the trace contains ``N >= 5``
  iteration-marker windows whose bodies and inter-iteration glue are
  canonically identical (see :func:`repro.core.collator.windows_are_periodic`)
  and the provider declares ``supports_iteration_folding`` (duration is a
  pure function of the event's shape, e.g. Maya's estimated provider, but
  *not* the jittered testbed provider), the engine simulates the first four
  windows plus the trace tail and extrapolates the remaining ``N - 4``
  iterations analytically.  The fold only commits if every rank was
  quiescent at its window boundaries and the measured per-rank period was
  stable across the two verification windows (within
  ``SimulationConfig.fold_tolerance``, which defaults to rounding-level
  drift; set 0.0 to demand bitwise-identical periods); otherwise the
  engine transparently re-runs the full event-by-event simulation.
  Structured host delays with a nonzero jitter term are treated
  *analytically* during a fold: the truncated replay materializes them at
  the window-mean jitter factor of 1.0 (i.e. the recorded base cost), so
  the windows stay exactly periodic and the extrapolated total differs
  from the per-event replay by at most ``sqrt(3) * jitter`` times the
  total base host-delay time (``fast_noise`` is uniform within
  ``1 +- jitter*sqrt(3)``, and a critical path can traverse each host
  delay at most once); the committed bound is reported as
  ``host_jitter_bound_s`` in the fold metadata.  Disable with
  ``SimulationConfig.fold_iterations=False``.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.collator import (
    _ITERATION_MARKER,
    CollatedTrace,
    CollectiveResolution,
    IterationWindows,
    find_iteration_windows,
    windows_are_periodic,
)
from repro.core.columnar import (
    E_COLLECTIVE,
    E_DEVICE_SYNC,
    E_EVENT_SYNC,
    E_HOST_DELAY,
    E_KERNEL,
    E_MARKER,
    E_RECORD,
    E_STREAM_SYNC,
    EngineProgram,
    columnar_worker_trace,
    engine_program,
)
from repro.core.simulator.providers import DurationProvider, TraceAnnotations
from repro.core.simulator.report import RankReport, SimulationReport
from repro.core.simulator.waitmaps import (
    CollectiveWaitMap,
    CudaEventWaitMap,
    P2PWaitMap,
)
from repro.core.trace import TraceEvent, TraceEventKind, WorkerTrace
from repro.hardware.cluster import ClusterSpec
from repro.hardware.host_model import (
    HOST_MODEL_METADATA_KEY,
    host_delay_materializer,
)


class SimulationError(RuntimeError):
    """Raised when the simulation cannot make progress (deadlock) or is
    otherwise mis-configured."""


@dataclass
class SimulationConfig:
    """Tunables of the simulation engine."""

    #: Ranks to simulate explicitly; ``None`` simulates the full world.
    simulate_ranks: Optional[Sequence[int]] = None
    #: Extra per-kernel slowdown applied while a collective is in flight on
    #: the same device.  Models SM contention; the paper notes Maya does NOT
    #: model this (Section 8), so it is enabled only for the testbed.
    sm_contention_factor: float = 1.0
    #: Fixed receiver-side completion overhead for point-to-point transfers.
    p2p_recv_overhead: float = 3.0e-6
    #: Whether host-side delays captured during emulation are replayed.
    include_host_overheads: bool = True
    #: Safety valve: maximum number of processed simulation events.
    max_events: int = 50_000_000
    #: Use the provider's batch ``annotate_trace`` fast path when available.
    use_annotations: bool = True
    #: Replay through the columnar (structure-of-arrays) inner loop when the
    #: trace columns are available.  Requires annotations (the columnar loop
    #: reads the flat duration arrays) and numpy; the engine transparently
    #: falls back to per-object dispatch otherwise.  Bit-identical to the
    #: per-event engine either way.
    use_columnar: bool = True
    #: Fold repeated steady-state iterations instead of simulating each.
    fold_iterations: bool = True
    #: Maximum *relative* disagreement between the two verification-window
    #: periods for a fold to commit.  Even a perfectly periodic workload
    #: accumulates floating-point rounding of ~1 ulp per window, so the
    #: default admits rounding-level drift (the extrapolated total then
    #: differs from the event-by-event engine by at most that much per
    #: folded iteration).  Set to 0.0 to require bitwise-identical periods.
    fold_tolerance: float = 1e-9


# Internal host states.
_HOST_RUNNING = 0
_HOST_BLOCKED = 1
_HOST_DONE = 2

#: Iteration windows simulated explicitly before folding: warm-up (0), the
#: representative window (1) and two verification windows (2, 3) whose
#: boundary-to-boundary periods must agree bitwise.
_FOLD_SIMULATED_WINDOWS = 4
#: Folding needs the simulated windows plus at least one window to fold.
_FOLD_MIN_ITERATIONS = _FOLD_SIMULATED_WINDOWS + 1

#: Bound on the provider-attached fold-veto memo (oldest-first eviction).
_FOLD_VETO_LIMIT = 256

#: Half-width of ``fast_noise``'s uniform support relative to ``scale``
#: (the jitter factor lies in ``1 +- scale * sqrt(3)``).
_SQRT3 = math.sqrt(3.0)


class _Stream:
    """FIFO execution stream of one simulated rank."""

    __slots__ = ("rank", "stream_id", "queue", "busy", "available_time",
                 "blocked", "sync_waiters", "busy_compute", "busy_comm",
                 "busy_memcpy", "kernel_durations", "collective_annotations",
                 "codes", "seqs", "ekeys")

    def __init__(self, rank: int, stream_id: int) -> None:
        self.rank = rank
        self.stream_id = stream_id
        #: Pending work: event objects (per-object engine) or positions into
        #: the rank's :class:`EngineProgram` (columnar engine).
        self.queue: Deque[object] = deque()
        self.busy = False
        self.blocked = False
        self.available_time = 0.0
        self.sync_waiters: List["_Host"] = []
        self.busy_compute = 0.0
        self.busy_comm = 0.0
        self.busy_memcpy = 0.0
        #: Flat per-seq duration array shared by all of the rank's streams
        #: (None when the provider has no annotation fast path).
        self.kernel_durations: Optional[List[float]] = None
        #: Per-seq pre-resolved (resolution, group, key, duration) tuples.
        self.collective_annotations: Optional[Dict[int, Tuple]] = None
        #: Columnar program views of the rank's trace (None when the run
        #: uses per-object dispatch).
        self.codes: Optional[List[int]] = None
        self.seqs: Optional[List[int]] = None
        self.ekeys: Optional[List[Optional[Tuple[int, int]]]] = None

    def drained(self) -> bool:
        return not self.busy and not self.queue


class _Host:
    """Host dispatch queue of one simulated rank."""

    __slots__ = ("rank", "events", "cursor", "state", "time", "waiting_streams",
                 "busy_time", "markers", "host_durations", "delay_fn",
                 "codes", "streams0", "seqs", "ekeys", "labels",
                 "base_durations", "n")

    def __init__(self, rank: int, trace: WorkerTrace) -> None:
        self.rank = rank
        self.events = trace.events
        self.cursor = 0
        self.state = _HOST_RUNNING
        self.time = 0.0
        self.waiting_streams: Set[Tuple[int, int]] = set()
        self.busy_time = 0.0
        self.markers: Dict[str, float] = {}
        #: Flat per-seq materialized HOST_DELAY durations (annotation fast
        #: path); ``None`` falls through to ``delay_fn`` / ``event.duration``.
        self.host_durations: Optional[List[float]] = None
        #: Per-event materializer (structured jitter / legacy value) used
        #: when no annotation array is available.
        self.delay_fn = None
        #: Columnar program views (set only when the run is columnar).
        self.codes: Optional[List[int]] = None
        self.streams0: Optional[List[int]] = None
        self.seqs: Optional[List[int]] = None
        self.ekeys: Optional[List[Optional[Tuple[int, int]]]] = None
        self.labels: Optional[List[Optional[str]]] = None
        self.base_durations: Optional[List[float]] = None
        self.n = 0


@dataclass(frozen=True)
class _FoldPlan:
    """A validated opportunity to fold steady-state iterations."""

    #: Iteration windows present in every simulated representative trace.
    iterations: int
    #: Marker indices per representative rank.
    windows: Dict[int, IterationWindows]
    #: Windows simulated explicitly (0 .. simulated-1).
    simulated: int = _FOLD_SIMULATED_WINDOWS

    @property
    def folded(self) -> int:
        return self.iterations - self.simulated

    @property
    def capture_labels(self) -> Tuple[str, ...]:
        """End markers snapshotted for period measurement/verification."""
        return tuple(f"iteration-{k}-end"
                     for k in range(1, self.simulated))

    def truncate(self, collated: CollatedTrace) -> CollatedTrace:
        """Copy of ``collated`` keeping only the simulated windows + tail.

        Event objects are shared and keep their original sequence numbers,
        so the collator's per-seq collective resolutions stay valid.
        """
        traces: Dict[int, WorkerTrace] = {}
        for rep, trace in collated.traces.items():
            windows = self.windows.get(rep)
            if windows is None:
                traces[rep] = trace
                continue
            cut = windows.ends[self.simulated - 1] + 1
            truncated = WorkerTrace(
                rank=trace.rank, device=trace.device,
                peak_memory_bytes=trace.peak_memory_bytes, oom=trace.oom,
                metadata=trace.metadata,
            )
            # Assign, don't append(): append would renumber event seqs.
            truncated.events = (trace.events[:cut]
                                + trace.events[windows.tail_index:])
            traces[rep] = truncated
        return CollatedTrace(
            world_size=collated.world_size,
            traces=traces,
            representative=collated.representative,
            resolutions=collated.resolutions,
            group_resolver=collated.group_resolver,
            stats=collated.stats,
        )


def plan_iteration_fold(collated: CollatedTrace,
                        ranks: Sequence[int]) -> Optional[_FoldPlan]:
    """Check whether ``collated`` supports steady-state iteration folding.

    Requires every simulated representative trace to carry a full, ordered
    set of ``N >= 5`` iteration-marker windows, with windows ``1 .. N-1``
    canonically periodic, no cross-window event-synchronisation and a
    marker-free tail.
    """
    representatives = sorted({collated.representative[rank] for rank in ranks})
    windows: Dict[int, IterationWindows] = {}
    count: Optional[int] = None
    for rep in representatives:
        trace = collated.traces[rep]
        found = find_iteration_windows(trace)
        if found is None:
            return None
        if count is None:
            count = found.count
        elif found.count != count:
            return None
        for event in trace.events[found.tail_index:]:
            if event.kind is TraceEventKind.MARKER:
                return None  # tail markers would need extrapolation too
        windows[rep] = found
    if count is None or count < _FOLD_MIN_ITERATIONS:
        return None
    for rep in representatives:
        if not windows_are_periodic(collated.traces[rep], windows[rep]):
            return None
    return _FoldPlan(iterations=count, windows=windows)


class ClusterSimulator:
    """Replays a collated trace on a simulated cluster."""

    def __init__(self, cluster: ClusterSpec, provider: DurationProvider,
                 config: Optional[SimulationConfig] = None) -> None:
        self.cluster = cluster
        self.provider = provider
        self.config = config or SimulationConfig()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def simulate(self, collated: CollatedTrace,
                 iterations: int = 1) -> SimulationReport:
        start = time.perf_counter()
        ranks = self._resolve_ranks(collated)
        state = self._run_state(collated, ranks)
        report = state.build_report(iterations)
        wall_time = time.perf_counter() - start
        report.metadata["wall_time_s"] = wall_time
        report.metadata["events_per_sec"] = (
            state.processed_events / wall_time if wall_time > 0.0 else 0.0)
        return report

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve_ranks(self, collated: CollatedTrace) -> List[int]:
        if self.config.simulate_ranks is not None:
            ranks = sorted(set(self.config.simulate_ranks))
        else:
            ranks = list(range(collated.world_size))
        missing = [rank for rank in ranks if rank not in collated.representative]
        if missing:
            raise SimulationError(f"no trace available for ranks {missing[:8]}")
        return ranks

    def _run_state(self, collated: CollatedTrace,
                   ranks: List[int]) -> "_SimulationState":
        plan = truncated = None
        veto_key = None
        if (self.config.fold_iterations
                and getattr(self.provider, "supports_iteration_folding",
                            False)):
            plan, truncated = self._fold_plan_for(collated, ranks)
        if plan is not None:
            # Fold-commit failures depend on this provider's durations and
            # the configured tolerance, so the negative memo lives on the
            # provider (the structural plan above stays provider-agnostic).
            # An insertion-ordered dict doubles as a bounded FIFO: when the
            # memo fills up, the oldest veto is evicted -- hot traces keep
            # their entries instead of the whole memo being wiped.
            vetoes = getattr(self.provider, "_fold_vetoes", None)
            if vetoes is None:
                vetoes = {}
                self.provider._fold_vetoes = vetoes
            veto_key = (collated.content_signature(), tuple(ranks),
                        self.config.fold_tolerance)
            if veto_key in vetoes:
                plan = None
        if plan is not None:
            state = _SimulationState(self, truncated, ranks,
                                     fold_plan=plan)
            try:
                state.run()
            except SimulationError:
                state = None  # truncated replay failed; use the full trace
            if state is not None and state.commit_fold(plan):
                return state
            # Boundary verification failed: don't pay the truncated replay
            # again for this (trace, ranks, tolerance) on this provider.
            while len(vetoes) >= _FOLD_VETO_LIMIT:
                vetoes.pop(next(iter(vetoes)))
            vetoes[veto_key] = True
        state = _SimulationState(self, collated, ranks)
        state.run()
        return state

    @staticmethod
    def _fold_plan_for(collated: CollatedTrace, ranks: List[int]
                       ) -> Tuple[Optional[_FoldPlan], Optional[CollatedTrace]]:
        """Fold plan + truncated trace, memoized on the collated object.

        Window fingerprinting and truncation are O(events); artifacts are
        shared across trials through the service cache, so stashing the
        result on the instance makes repeated simulations pay it once.
        """
        cache: Dict[Tuple[int, ...], Tuple] = getattr(
            collated, "_fold_plan_cache", None)
        if cache is None:
            cache = {}
            collated._fold_plan_cache = cache  # type: ignore[attr-defined]
        key = tuple(ranks)
        entry = cache.get(key)
        if entry is None:
            plan = plan_iteration_fold(collated, ranks)
            truncated = plan.truncate(collated) if plan is not None else None
            entry = (plan, truncated)
            cache[key] = entry
        return entry


class _SimulationState:
    """Mutable state of one simulation run."""

    def __init__(self, simulator: ClusterSimulator, collated: CollatedTrace,
                 ranks: List[int],
                 fold_plan: Optional[_FoldPlan] = None) -> None:
        self.sim = simulator
        self.collated = collated
        self.config = simulator.config
        self.provider = simulator.provider
        self.ranks = ranks
        self.rank_set = set(ranks)

        self.annotations: Optional[TraceAnnotations] = None
        if (self.config.use_annotations
                and hasattr(self.provider, "annotate_trace")):
            self.annotations = self.provider.annotate_trace(collated, ranks)

        self.fold_plan = fold_plan
        self._fold_capture_labels: Set[str] = (
            set(fold_plan.capture_labels) if fold_plan is not None else set())
        self.fold_valid = fold_plan is not None
        #: (rank, label) -> (host time, report counter snapshot).
        self.fold_snapshots: Dict[Tuple[int, str], Tuple] = {}
        self.fold_info: Optional[Dict[str, object]] = None

        self.hosts: Dict[int, _Host] = {
            rank: _Host(rank, collated.trace_for(rank)) for rank in ranks
        }
        # Host-delay materialization.  Per-event replay applies the
        # structured trace's jitter factor (via the pre-annotated array or
        # the per-trace materializer closure); a fold replay deliberately
        # skips both and pays the recorded base cost -- the window-mean
        # jitter factor of 1.0 -- so that steady-state windows stay exactly
        # periodic and extrapolation is the analytic mean over the folded
        # jitter stream.  Legacy traces hit ``event.duration`` either way.
        if fold_plan is None:
            materializers: Dict[int, object] = {}
            for rank, host in self.hosts.items():
                if self.annotations is not None:
                    host.host_durations = \
                        self.annotations.host_durations.get(rank)
                if host.host_durations is None:
                    rep = collated.representative[rank]
                    delay_fn = materializers.get(rep)
                    if delay_fn is None:
                        delay_fn = host_delay_materializer(
                            collated.traces[rep].metadata)
                        materializers[rep] = delay_fn
                    host.delay_fn = delay_fn
        # Columnar fast path: dispatch on flat opcode lists instead of
        # per-event enum/attribute access.  Requires annotations (the loop
        # reads the flat duration arrays) and available trace columns; the
        # per-object engine remains the fallback and the reference.
        self._columnar = False
        self._programs: Dict[int, EngineProgram] = {}
        if self.annotations is not None and self.config.use_columnar:
            rep_programs: Optional[Dict[int, EngineProgram]] = {}
            for rep in {collated.representative[rank] for rank in ranks}:
                cols = columnar_worker_trace(collated.traces[rep])
                if cols is None:  # numpy unavailable
                    rep_programs = None
                    break
                rep_programs[rep] = engine_program(cols)
            if rep_programs is not None:
                self._columnar = True
                for rank in ranks:
                    prog = rep_programs[collated.representative[rank]]
                    self._programs[rank] = prog
                    host = self.hosts[rank]
                    host.codes = prog.codes
                    host.streams0 = prog.streams
                    host.seqs = prog.seqs
                    host.ekeys = prog.ekeys
                    host.labels = prog.labels
                    host.base_durations = prog.durations
                    host.n = prog.n
                # Bound-method overrides: the run-wide dispatch mode is
                # fixed here, so the hot loop pays no per-call branch.
                self._advance_host = self._advance_host_columnar
                self._drain_stream = self._drain_stream_columnar
                self._try_start_stream = self._try_start_stream_columnar
        self._sm_contention = self.config.sm_contention_factor > 1.0
        self.streams: Dict[Tuple[int, int], _Stream] = {}
        self.event_map = CudaEventWaitMap()
        self.collective_map = CollectiveWaitMap()
        self.p2p_map = P2PWaitMap()
        #: Number of in-flight collectives per rank (SM-contention modelling).
        self.inflight_collectives: Dict[int, int] = {rank: 0 for rank in ranks}
        #: Cache of resolved communicator groups per (rank, tag, rep group).
        self._group_cache: Dict[Tuple, Tuple[int, ...]] = {}

        self.queue: List[Tuple[float, int, int, object]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self.processed_events = 0
        self.rank_reports: Dict[int, RankReport] = {
            rank: RankReport(rank=rank) for rank in ranks
        }

    # ------------------------------------------------------------------
    # event queue helpers
    # ------------------------------------------------------------------
    _HOST_READY = 0
    _OP_END = 1
    #: Columnar op completions carry only the stream; whether the finished
    #: op was a collective (for SM-contention accounting) is encoded in the
    #: heap kind instead of read off an event object.
    _OP_END_COL = 2
    _OP_END_COLL = 3

    def _schedule(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self.queue, (time, next(self._counter), kind, payload))

    def _stream(self, rank: int, stream_id: Optional[int]) -> _Stream:
        key = (rank, stream_id if stream_id is not None else 0)
        stream = self.streams.get(key)
        if stream is None:
            stream = _Stream(rank, key[1])
            if self.annotations is not None:
                stream.kernel_durations = \
                    self.annotations.kernel_durations.get(rank)
                stream.collective_annotations = \
                    self.annotations.collectives.get(rank)
            if self._columnar:
                prog = self._programs[rank]
                stream.codes = prog.codes
                stream.seqs = prog.seqs
                stream.ekeys = prog.ekeys
            self.streams[key] = stream
        return stream

    # ------------------------------------------------------------------
    # main loop (Algorithm 1)
    # ------------------------------------------------------------------
    def run(self) -> None:
        for host in self.hosts.values():
            self._advance_host(host, 0.0)
        queue = self.queue
        heappop = heapq.heappop
        max_events = self.config.max_events
        host_ready = self._HOST_READY
        op_end = self._OP_END
        op_end_col = self._OP_END_COL
        while queue:
            time, _, kind, payload = heappop(queue)
            if self.now < time:
                self.now = time
            self.processed_events += 1
            if self.processed_events > max_events:
                raise SimulationError(
                    f"simulation exceeded max_events budget "
                    f"({self.config.max_events:,}): world size "
                    f"{self.collated.world_size} with {len(self.ranks)} "
                    f"simulated ranks processed {self.processed_events:,} "
                    f"events at simulated time {self.now:.3f}s"
                )
            if kind == host_ready:
                host = payload
                if host.state != _HOST_DONE:
                    host.state = _HOST_RUNNING
                    self._advance_host(host, time)
            elif kind == op_end:
                stream, event = payload
                self._finish_op(stream, event, time)
            elif kind == op_end_col:
                self._finish_op_columnar(payload, False, time)
            else:  # _OP_END_COLL
                self._finish_op_columnar(payload, True, time)
        self._check_finished()

    def _check_finished(self) -> None:
        stuck_hosts = [host.rank for host in self.hosts.values()
                       if host.state != _HOST_DONE]
        stuck_streams = [key for key, stream in self.streams.items()
                         if not stream.drained()]
        if stuck_hosts or stuck_streams:
            pending_colls = list(self.collective_map.pending().keys())[:4]
            pending_p2p = list(self.p2p_map.pending().keys())[:4]
            raise SimulationError(
                "simulation deadlocked: "
                f"hosts blocked on ranks {stuck_hosts[:8]}, "
                f"streams stuck {stuck_streams[:8]}, "
                f"pending collectives {pending_colls}, "
                f"pending p2p {pending_p2p}"
            )

    # ------------------------------------------------------------------
    # host dispatch queue
    # ------------------------------------------------------------------
    def _advance_host(self, host: _Host, now: float) -> None:
        host.time = max(host.time, now)
        events = host.events
        while host.cursor < len(events):
            event = events[host.cursor]
            kind = event.kind

            if kind is TraceEventKind.HOST_DELAY:
                host.cursor += 1
                if not self.config.include_host_overheads:
                    continue
                if host.host_durations is not None:
                    duration = host.host_durations[event.seq]
                elif host.delay_fn is not None:
                    duration = host.delay_fn(event)
                else:
                    # Fold replay (mean jitter factor 1.0) or a bare legacy
                    # event: the recorded duration is the replayed cost.
                    duration = event.duration or 0.0
                host.busy_time += duration
                host.time += duration
                self.rank_reports[host.rank].host_time += duration
                self._schedule(host.time, self._HOST_READY, host)
                return

            if kind is TraceEventKind.MARKER:
                label = str(event.params.get("label", ""))
                host.markers[label] = host.time
                if label in self._fold_capture_labels:
                    self._capture_fold_snapshot(host, label)
                host.cursor += 1
                continue

            if kind in (TraceEventKind.KERNEL, TraceEventKind.MEMCPY,
                        TraceEventKind.MEMSET, TraceEventKind.COLLECTIVE,
                        TraceEventKind.EVENT_RECORD,
                        TraceEventKind.STREAM_WAIT_EVENT):
                if (kind is TraceEventKind.EVENT_RECORD
                        and (event.params.get("create")
                             or event.params.get("destroy"))):
                    host.cursor += 1
                    continue
                host.cursor += 1
                stream = self._stream(host.rank, event.stream)
                stream.queue.append(event)
                self._try_start_stream(stream, host.time)
                continue

            if kind is TraceEventKind.EVENT_SYNCHRONIZE:
                key = CudaEventWaitMap.key(host.rank, event.wait_event or 0,
                                           int(event.params.get("version", 0)))
                if self.event_map.is_complete(key):
                    host.time = max(host.time, self.event_map.completion_time(key))
                    host.cursor += 1
                    continue
                self.event_map.block(key, ("host", host))
                host.state = _HOST_BLOCKED
                return

            if kind is TraceEventKind.STREAM_SYNCHRONIZE:
                stream = self._stream(host.rank, event.stream)
                if stream.drained():
                    host.time = max(host.time, stream.available_time)
                    host.cursor += 1
                    continue
                stream.sync_waiters.append(host)
                host.waiting_streams = {(host.rank, stream.stream_id)}
                host.state = _HOST_BLOCKED
                host.cursor += 1
                return

            if kind is TraceEventKind.DEVICE_SYNCHRONIZE:
                pending = {key for key, stream in self.streams.items()
                           if key[0] == host.rank and not stream.drained()}
                if not pending:
                    latest = max((stream.available_time
                                  for key, stream in self.streams.items()
                                  if key[0] == host.rank), default=host.time)
                    host.time = max(host.time, latest)
                    host.cursor += 1
                    continue
                for key in pending:
                    self.streams[key].sync_waiters.append(host)
                host.waiting_streams = pending
                host.state = _HOST_BLOCKED
                host.cursor += 1
                return

            # Unknown event kinds are ignored (forward compatibility).
            host.cursor += 1

        host.state = _HOST_DONE
        self.rank_reports[host.rank].finish_time = max(
            self.rank_reports[host.rank].finish_time, host.time)

    def _advance_host_columnar(self, host: _Host, now: float) -> None:
        """Columnar twin of :meth:`_advance_host`.

        Dispatches on the program's int opcodes; every state transition,
        float operation and schedule happens in the same order as the
        per-object loop, so the two engines are bit-identical (asserted by
        the randomized differential suites).
        """
        if host.time < now:
            host.time = now
        codes = host.codes
        streams0 = host.streams0
        streams = self.streams
        rank = host.rank
        n = host.n
        cursor = host.cursor
        while cursor < n:
            code = codes[cursor]
            if code < E_HOST_DELAY:  # enqueue device work (E_KERNEL..E_WAIT)
                stream = streams.get((rank, streams0[cursor]))
                if stream is None:
                    stream = self._stream(rank, streams0[cursor])
                stream.queue.append(cursor)
                cursor += 1
                # A busy/blocked stream cannot start new work: the drain
                # loop would return immediately, so skip the call.
                if not stream.busy and not stream.blocked:
                    self._try_start_stream_columnar(stream, host.time)
                continue
            if code == E_HOST_DELAY:
                cursor += 1
                if not self.config.include_host_overheads:
                    continue
                if host.host_durations is not None:
                    duration = host.host_durations[host.seqs[cursor - 1]]
                else:
                    # Fold replay: the recorded base cost (the window-mean
                    # jitter factor of 1.0), as in the per-object loop.
                    duration = host.base_durations[cursor - 1]
                host.busy_time += duration
                host.time += duration
                self.rank_reports[rank].host_time += duration
                host.cursor = cursor
                self._schedule(host.time, self._HOST_READY, host)
                return
            if code == E_MARKER:
                label = host.labels[cursor]
                host.markers[label] = host.time
                if label in self._fold_capture_labels:
                    self._capture_fold_snapshot(host, label)
                cursor += 1
                continue
            if code == E_EVENT_SYNC:
                key = (rank,) + host.ekeys[cursor]
                if self.event_map.is_complete(key):
                    completion = self.event_map.completion_time(key)
                    if host.time < completion:
                        host.time = completion
                    cursor += 1
                    continue
                host.cursor = cursor
                self.event_map.block(key, ("host", host))
                host.state = _HOST_BLOCKED
                return
            if code == E_STREAM_SYNC:
                stream = self._stream(rank, streams0[cursor])
                if stream.drained():
                    if host.time < stream.available_time:
                        host.time = stream.available_time
                    cursor += 1
                    continue
                stream.sync_waiters.append(host)
                host.waiting_streams = {(rank, stream.stream_id)}
                host.state = _HOST_BLOCKED
                host.cursor = cursor + 1
                return
            if code == E_DEVICE_SYNC:
                pending = {key for key, stream in streams.items()
                           if key[0] == rank and not stream.drained()}
                if not pending:
                    latest = max((stream.available_time
                                  for key, stream in streams.items()
                                  if key[0] == rank), default=host.time)
                    if host.time < latest:
                        host.time = latest
                    cursor += 1
                    continue
                for key in pending:
                    streams[key].sync_waiters.append(host)
                host.waiting_streams = pending
                host.state = _HOST_BLOCKED
                host.cursor = cursor + 1
                return
            # E_SKIP: event-handle create/destroy records never enqueue.
            cursor += 1
        host.cursor = cursor
        host.state = _HOST_DONE
        report = self.rank_reports[rank]
        if report.finish_time < host.time:
            report.finish_time = host.time

    def _release_host(self, host: _Host, time: float) -> None:
        # Only a blocked host may be released.  Two streams draining at the
        # same timestamp can both notify one device-synchronize waiter; the
        # duplicate release used to enqueue a second HOST_READY that pushed
        # the host past its *next* synchronize (the cursor advances before
        # blocking), letting it run ahead of busy streams.
        if host.state != _HOST_BLOCKED:
            return
        host.state = _HOST_RUNNING
        self._schedule(time, self._HOST_READY, host)

    def _notify_stream_drained(self, stream: _Stream, time: float) -> None:
        if not stream.drained() or not stream.sync_waiters:
            return
        waiters, stream.sync_waiters = stream.sync_waiters, []
        for host in waiters:
            host.waiting_streams.discard((stream.rank, stream.stream_id))
            if not host.waiting_streams:
                host.time = max(host.time, time)
                self._release_host(host, time)
            else:
                # Still waiting on other streams (device synchronize).
                stream_key_pending = False
                for key in list(host.waiting_streams):
                    pending_stream = self.streams.get(key)
                    if pending_stream is None or pending_stream.drained():
                        host.waiting_streams.discard(key)
                    else:
                        stream_key_pending = True
                if not stream_key_pending:
                    host.time = max(host.time, time)
                    self._release_host(host, time)

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------
    def _try_start_stream(self, stream: _Stream, now: float) -> None:
        self._drain_stream(stream, now)
        if stream.drained():
            self._notify_stream_drained(stream, max(stream.available_time, now))

    def _try_start_stream_columnar(self, stream: _Stream, now: float) -> None:
        """Columnar twin of :meth:`_try_start_stream`.

        Inlines :meth:`_Stream.drained` and skips the drained notification
        when nobody is synchronizing on the stream -- both are no-ops in
        that case, so behaviour is identical to the object path.
        """
        self._drain_stream_columnar(stream, now)
        if (stream.sync_waiters and not stream.busy and not stream.blocked
                and not stream.queue):
            available = stream.available_time
            self._notify_stream_drained(
                stream, available if available > now else now)

    def _drain_stream(self, stream: _Stream, now: float) -> None:
        while not stream.busy and not stream.blocked and stream.queue:
            event = stream.queue[0]
            start = max(stream.available_time, now)
            kind = event.kind

            if kind is TraceEventKind.EVENT_RECORD:
                stream.queue.popleft()
                stream.available_time = start
                key = CudaEventWaitMap.key(stream.rank, event.event or 0,
                                           int(event.params.get("version", 0)))
                for waiter in self.event_map.record(key, start):
                    self._release_waiter(waiter, start)
                continue

            if kind is TraceEventKind.STREAM_WAIT_EVENT:
                key = CudaEventWaitMap.key(stream.rank, event.wait_event or 0,
                                           int(event.params.get("version", 0)))
                if self.event_map.is_complete(key):
                    stream.queue.popleft()
                    stream.available_time = max(start,
                                                self.event_map.completion_time(key))
                    continue
                stream.blocked = True
                self.event_map.block(key, ("stream", stream))
                return

            if kind is TraceEventKind.COLLECTIVE:
                if self._start_collective(stream, event, start):
                    continue
                return

            # Plain device work: kernels, copies, memsets.  The annotated
            # duration array turns this into an integer-indexed read.
            if stream.kernel_durations is not None:
                duration = stream.kernel_durations[event.seq]
            else:
                duration = self.provider.kernel_duration(stream.rank, event)
            if (self.config.sm_contention_factor > 1.0
                    and self.inflight_collectives.get(stream.rank, 0) > 0
                    and kind is TraceEventKind.KERNEL):
                duration *= self.config.sm_contention_factor
            stream.queue.popleft()
            stream.busy = True
            end = start + duration
            stream.available_time = end
            report = self.rank_reports[stream.rank]
            if kind is TraceEventKind.KERNEL:
                stream.busy_compute += duration
                report.compute_time += duration
                report.kernel_count += 1
            else:
                stream.busy_memcpy += duration
                report.memcpy_time += duration
            self._schedule(end, self._OP_END, (stream, event))
            return

    def _drain_stream_columnar(self, stream: _Stream, now: float) -> None:
        """Columnar twin of :meth:`_drain_stream` (see its docstring)."""
        codes = stream.codes
        seqs = stream.seqs
        queue = stream.queue
        kernel_durations = stream.kernel_durations
        while not stream.busy and not stream.blocked and queue:
            pos = queue[0]
            start = stream.available_time
            if start < now:
                start = now
            code = codes[pos]
            if code < E_COLLECTIVE:  # kernel / memcpy / memset
                duration = kernel_durations[seqs[pos]]
                if (code == E_KERNEL and self._sm_contention
                        and self.inflight_collectives.get(stream.rank,
                                                          0) > 0):
                    duration *= self.config.sm_contention_factor
                queue.popleft()
                stream.busy = True
                end = start + duration
                stream.available_time = end
                report = self.rank_reports[stream.rank]
                if code == E_KERNEL:
                    stream.busy_compute += duration
                    report.compute_time += duration
                    report.kernel_count += 1
                else:
                    stream.busy_memcpy += duration
                    report.memcpy_time += duration
                self._schedule(end, self._OP_END_COL, stream)
                return
            if code == E_COLLECTIVE:
                if self._start_collective_columnar(stream, seqs[pos], start):
                    continue
                return
            if code == E_RECORD:
                queue.popleft()
                stream.available_time = start
                key = (stream.rank,) + stream.ekeys[pos]
                for waiter in self.event_map.record(key, start):
                    self._release_waiter(waiter, start)
                continue
            # E_WAIT: stream-waits-event.
            key = (stream.rank,) + stream.ekeys[pos]
            if self.event_map.is_complete(key):
                queue.popleft()
                completion = self.event_map.completion_time(key)
                stream.available_time = (start if start > completion
                                         else completion)
                continue
            stream.blocked = True
            self.event_map.block(key, ("stream", stream))
            return

    def _release_waiter(self, waiter: Tuple[str, object], time: float) -> None:
        kind, target = waiter
        if kind == "host":
            host = target
            host.time = max(host.time, time)
            host.cursor += 1  # consume the EVENT_SYNCHRONIZE entry
            self._release_host(host, time)
        elif kind == "stream":
            stream = target
            stream.blocked = False
            stream.queue.popleft()  # consume the STREAM_WAIT_EVENT entry
            stream.available_time = max(stream.available_time, time)
            self._try_start_stream(stream, time)
        elif kind == "recv":
            stream, event, resolution, group, recv_ready = target
            self._complete_recv(stream, event, resolution, group, recv_ready,
                                time)
        elif kind == "recv_col":
            stream, recv_ready = target
            self._complete_recv_columnar(stream, recv_ready, time)

    # ------------------------------------------------------------------
    # collectives and point-to-point transfers
    # ------------------------------------------------------------------
    def _resolve_group(self, rank: int,
                       resolution: CollectiveResolution) -> Tuple[int, ...]:
        cache_key = (rank, resolution.tag, resolution.representative_group)
        group = self._group_cache.get(cache_key)
        if group is None:
            group = tuple(self.collated.group_resolver.group_for(
                rank, resolution.tag, resolution.representative_group))
            self._group_cache[cache_key] = group
        return group

    def _start_collective(self, stream: _Stream, event: TraceEvent,
                          start: float) -> bool:
        """Start a collective at the head of ``stream``.

        Returns True when the stream can keep draining immediately (the
        operation resolved to a local no-op), False when the stream is now
        busy or blocked.
        """
        annotated = None
        if stream.collective_annotations is not None:
            annotated = stream.collective_annotations.get(event.seq)
        if annotated is not None:
            resolution, group, key, duration = annotated
        else:
            resolution = self.collated.resolution_for(stream.rank, event)
            if resolution is None:
                # A collective without resolution metadata: local no-op.
                stream.queue.popleft()
                stream.available_time = start
                return True
            group = self._resolve_group(stream.rank, resolution)
            key = resolution.key_for(stream.rank, self.collated.group_resolver)
            duration = None

        if resolution.is_p2p:
            self._start_p2p(stream, event, resolution, group, key, start,
                            duration)
            return False

        expected = sum(1 for rank in group if rank in self.rank_set)
        expected = max(expected, 1)
        instance = self.collective_map.join(key, expected, stream.rank,
                                            stream.stream_id, start)
        if instance is None:
            stream.blocked = True
            return False
        if duration is None:
            duration = self.provider.collective_duration(stream.rank, event,
                                                         resolution, group)
        coll_start = instance.start_time
        end = coll_start + duration
        for rank, stream_id, ready in instance.joined:
            member = self._stream(rank, stream_id)
            member.blocked = False
            if member.queue:
                member.queue.popleft()
            member.busy = True
            member.available_time = end
            report = self.rank_reports[rank]
            report.communication_time += duration
            report.exposed_communication_time += max(end - ready, 0.0) - \
                max(coll_start - ready, 0.0)
            report.collective_count += 1
            member.busy_comm += duration
            self.inflight_collectives[rank] = (
                self.inflight_collectives.get(rank, 0) + 1)
            self._schedule(end, self._OP_END, (member, event))
        return False

    def _start_p2p(self, stream: _Stream, event: TraceEvent,
                   resolution: CollectiveResolution, group: Tuple[int, ...],
                   key: Tuple, start: float,
                   duration: Optional[float] = None) -> None:
        if duration is None:
            pair: Tuple[int, ...]
            if resolution.peer_position is not None and len(group) > max(
                    resolution.self_position, resolution.peer_position):
                pair = (group[resolution.self_position],
                        group[resolution.peer_position])
            else:
                pair = tuple(group[:2]) if len(group) >= 2 else group
            duration = self.provider.collective_duration(stream.rank, event,
                                                         resolution, pair)
        report = self.rank_reports[stream.rank]

        if resolution.op == "send":
            stream.queue.popleft()
            stream.busy = True
            end = start + duration
            stream.available_time = end
            stream.busy_comm += duration
            report.communication_time += duration
            report.collective_count += 1
            waiter = self.p2p_map.post_send(key, end)
            if waiter is not None:
                self._release_waiter(("recv", waiter), end)
            self._schedule(end, self._OP_END, (stream, event))
            return

        # Receive: completes once the matching send's payload has arrived.
        send_end = self.p2p_map.post_recv(
            key, (stream, event, resolution, group, start), start)
        if send_end is None:
            stream.blocked = True
            return
        self._complete_recv(stream, event, resolution, group, start,
                            send_end)

    def _complete_recv(self, stream: _Stream, event: TraceEvent,
                       resolution: CollectiveResolution,
                       group: Tuple[int, ...], recv_ready: float,
                       send_end: float) -> None:
        end = max(recv_ready, send_end) + self.config.p2p_recv_overhead
        stream.blocked = False
        if stream.queue:
            stream.queue.popleft()
        stream.busy = True
        stream.available_time = end
        duration = max(end - recv_ready, 0.0)
        stream.busy_comm += duration
        report = self.rank_reports[stream.rank]
        report.communication_time += duration
        report.exposed_communication_time += duration
        report.collective_count += 1
        self._schedule(end, self._OP_END, (stream, event))

    def _start_collective_columnar(self, stream: _Stream, seq: int,
                                   start: float) -> bool:
        """Columnar twin of :meth:`_start_collective`.

        The columnar loop only runs with annotations, so every resolvable
        collective carries a pre-resolved (resolution, group, key, duration)
        tuple; a missing entry means the object path's ``resolution_for``
        would return ``None`` (local no-op).
        """
        annotated = stream.collective_annotations.get(seq)
        if annotated is None:
            stream.queue.popleft()
            stream.available_time = start
            return True
        resolution, group, key, duration = annotated
        if resolution.is_p2p:
            self._start_p2p_columnar(stream, resolution.op, key, start,
                                     duration)
            return False
        expected = sum(1 for rank in group if rank in self.rank_set)
        expected = max(expected, 1)
        instance = self.collective_map.join(key, expected, stream.rank,
                                            stream.stream_id, start)
        if instance is None:
            stream.blocked = True
            return False
        coll_start = instance.start_time
        end = coll_start + duration
        for rank, stream_id, ready in instance.joined:
            member = self._stream(rank, stream_id)
            member.blocked = False
            if member.queue:
                member.queue.popleft()
            member.busy = True
            member.available_time = end
            report = self.rank_reports[rank]
            report.communication_time += duration
            report.exposed_communication_time += max(end - ready, 0.0) - \
                max(coll_start - ready, 0.0)
            report.collective_count += 1
            member.busy_comm += duration
            self.inflight_collectives[rank] = (
                self.inflight_collectives.get(rank, 0) + 1)
            self._schedule(end, self._OP_END_COLL, member)
        return False

    def _start_p2p_columnar(self, stream: _Stream, op: str, key: Tuple,
                            start: float, duration: float) -> None:
        report = self.rank_reports[stream.rank]
        if op == "send":
            stream.queue.popleft()
            stream.busy = True
            end = start + duration
            stream.available_time = end
            stream.busy_comm += duration
            report.communication_time += duration
            report.collective_count += 1
            waiter = self.p2p_map.post_send(key, end)
            if waiter is not None:
                self._release_waiter(("recv_col", waiter), end)
            self._schedule(end, self._OP_END_COLL, stream)
            return
        send_end = self.p2p_map.post_recv(key, (stream, start), start)
        if send_end is None:
            stream.blocked = True
            return
        self._complete_recv_columnar(stream, start, send_end)

    def _complete_recv_columnar(self, stream: _Stream, recv_ready: float,
                                send_end: float) -> None:
        end = max(recv_ready, send_end) + self.config.p2p_recv_overhead
        stream.blocked = False
        if stream.queue:
            stream.queue.popleft()
        stream.busy = True
        stream.available_time = end
        duration = max(end - recv_ready, 0.0)
        stream.busy_comm += duration
        report = self.rank_reports[stream.rank]
        report.communication_time += duration
        report.exposed_communication_time += duration
        report.collective_count += 1
        self._schedule(end, self._OP_END_COLL, stream)

    # ------------------------------------------------------------------
    # op completion
    # ------------------------------------------------------------------
    def _finish_op(self, stream: _Stream, event: TraceEvent,
                   time: float) -> None:
        stream.busy = False
        stream.available_time = max(stream.available_time, time)
        if event.kind is TraceEventKind.COLLECTIVE:
            count = self.inflight_collectives.get(stream.rank, 0)
            if count > 0:
                self.inflight_collectives[stream.rank] = count - 1
        report = self.rank_reports[stream.rank]
        report.finish_time = max(report.finish_time, time)
        self._try_start_stream(stream, time)

    def _finish_op_columnar(self, stream: _Stream, was_collective: bool,
                            time: float) -> None:
        stream.busy = False
        if stream.available_time < time:
            stream.available_time = time
        if was_collective:
            count = self.inflight_collectives.get(stream.rank, 0)
            if count > 0:
                self.inflight_collectives[stream.rank] = count - 1
        report = self.rank_reports[stream.rank]
        if report.finish_time < time:
            report.finish_time = time
        self._try_start_stream(stream, time)

    # ------------------------------------------------------------------
    # steady-state iteration folding
    # ------------------------------------------------------------------
    def _capture_fold_snapshot(self, host: _Host, label: str) -> None:
        """Snapshot a rank's clocks/counters at an iteration boundary.

        Valid only if the rank is quiescent (all of its streams drained) at
        the marker: then every duration of the finished window has already
        been booked to its report and the boundary state reduces to the
        host clock.
        """
        rank = host.rank
        if not self.fold_valid:
            return
        for (stream_rank, _), stream in self.streams.items():
            if stream_rank == rank and not stream.drained():
                self.fold_valid = False
                return
        report = self.rank_reports[rank]
        self.fold_snapshots[(rank, label)] = (
            host.time,
            report.compute_time,
            report.communication_time,
            report.exposed_communication_time,
            report.host_time,
            report.memcpy_time,
            report.kernel_count,
            report.collective_count,
        )

    def commit_fold(self, plan: _FoldPlan) -> bool:
        """Verify boundary periodicity and extrapolate the folded windows.

        The truncated replay simulated windows ``0 .. simulated-1`` plus the
        trace tail.  The fold commits only if every rank was quiescent at
        its last three window boundaries and the two measured periods agree
        to within ``config.fold_tolerance`` (relative; 0.0 demands bitwise
        equality); the remaining iterations then advance every clock,
        counter and marker by the verified per-rank period.  Any violation
        reports failure so the caller re-runs the full simulation.

        Structured host delays were replayed at their base cost (the
        window-mean jitter factor of 1.0), so the committed result is the
        analytic mean over the folded jitter stream.  The worst-case
        deviation from the per-event replay is bounded by
        ``sqrt(3) * jitter * H`` where ``H`` is the total base host-delay
        time across the simulated ranks: every materialized delay lies
        within ``base * (1 +- sqrt(3) * jitter)`` (``fast_noise``'s uniform
        support; the 0.2 floor only tightens it) and any critical path
        traverses each host delay at most once.  The bound is published as
        ``host_jitter_bound_s`` in the fold metadata.
        """
        if not self.fold_valid:
            return False
        labels = plan.capture_labels
        folded = plan.folded
        periods: Dict[int, float] = {}
        deltas: Dict[int, Tuple] = {}
        for rank in self.ranks:
            snaps = [self.fold_snapshots.get((rank, label))
                     for label in labels]
            if any(snap is None for snap in snaps):
                return False
            first, second, third = snaps
            period_a = second[0] - first[0]
            period_b = third[0] - second[0]
            tolerance = self.config.fold_tolerance * max(abs(period_a),
                                                         abs(period_b))
            if period_b < 0.0 or abs(period_a - period_b) > tolerance:
                return False
            delta = tuple(third[i] - second[i] for i in range(1, 8))
            check = tuple(second[i] - first[i] for i in range(6, 8))
            if check != delta[5:]:
                return False  # event counts drifted between windows
            periods[rank] = period_b
            deltas[rank] = delta
        offsets: Dict[int, float] = {}
        for rank in self.ranks:
            period = periods[rank]
            delta = deltas[rank]
            # Iterative addition mirrors the engine's per-window clock
            # accumulation (and is exact whenever the full replay is).
            offset = 0.0
            for _ in range(folded):
                offset += period
            offsets[rank] = offset
            host = self.hosts[rank]
            host.time += offset
            report = self.rank_reports[rank]
            report.finish_time += offset
            for _ in range(folded):
                report.compute_time += delta[0]
                report.communication_time += delta[1]
                report.exposed_communication_time += delta[2]
                report.host_time += delta[3]
                report.memcpy_time += delta[4]
            report.kernel_count += folded * delta[5]
            report.collective_count += folded * delta[6]
            self._extrapolate_markers(host, plan, period, offset)
        for (rank, _), stream in self.streams.items():
            offset = offsets.get(rank)
            if offset is not None:
                stream.available_time += offset
        jitter_scale = 0.0
        for rank in self.ranks:
            profile = (self.collated.trace_for(rank).metadata.get(
                HOST_MODEL_METADATA_KEY) or {})
            jitter_scale = max(jitter_scale,
                               float(profile.get("jitter", 0.0)))
        host_base_total = sum(report.host_time
                              for report in self.rank_reports.values())
        self.fold_info = {
            "iterations": plan.iterations,
            "simulated_iterations": plan.simulated,
            "folded_iterations": folded,
            "period_s": max(periods.values(), default=0.0),
            # Structured host delays fold at the analytic mean jitter
            # factor of 1.0; the per-event replay can deviate by at most
            # this much (see the commit_fold docstring).
            "host_jitter_scale": jitter_scale,
            "host_jitter_bound_s": _SQRT3 * jitter_scale * host_base_total,
        }
        return True

    def _extrapolate_markers(self, host: _Host, plan: _FoldPlan,
                             period: float, offset: float) -> None:
        last = plan.simulated - 1
        for suffix in ("start", "end"):
            base = host.markers.get(f"iteration-{last}-{suffix}")
            if base is None:
                continue
            timestamp = base
            for k in range(plan.simulated, plan.iterations):
                timestamp += period
                host.markers[f"iteration-{k}-{suffix}"] = timestamp
        # Non-iteration markers recur every window (the windows are
        # canonically identical); their final occurrence belongs to the last
        # real window, so shift anything recorded after the second-to-last
        # simulated boundary.
        boundary = self.fold_snapshots[(host.rank,
                                        f"iteration-{last - 1}-end")][0]
        for label, timestamp in list(host.markers.items()):
            if _ITERATION_MARKER.match(label):
                continue
            if timestamp > boundary:
                host.markers[label] = timestamp + offset

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def build_report(self, iterations: int) -> SimulationReport:
        finish_times = [report.finish_time for report in self.rank_reports.values()]
        host_times = [host.time for host in self.hosts.values()]
        stream_times = [stream.available_time for stream in self.streams.values()]
        total = max(finish_times + host_times + stream_times + [0.0])

        markers: Dict[str, Dict[int, float]] = {}
        for host in self.hosts.values():
            for label, timestamp in host.markers.items():
                markers.setdefault(label, {})[host.rank] = timestamp

        metadata: Dict[str, object] = {
            "simulated_ranks": len(self.ranks),
            "processed_events": self.processed_events,
            "world_size": self.collated.world_size,
            "engine": ("columnar" if self._columnar
                       else "annotated" if self.annotations is not None
                       else "serial"),
        }
        if self.fold_info is not None:
            metadata["iteration_folding"] = dict(self.fold_info)
        return SimulationReport(
            total_time=total,
            iterations=iterations,
            rank_reports=self.rank_reports,
            peak_memory_bytes=self.collated.peak_memory_bytes(),
            oom=self.collated.any_oom(),
            markers=markers,
            metadata=metadata,
        )
