"""Discrete-event cluster simulator (Algorithms 1-2 of the paper).

The engine replays a collated job trace against a cluster specification:

* each simulated rank has a **host dispatch queue** that walks its trace in
  program order, paying the measured host delays, enqueueing device work
  onto streams and blocking on synchronisation calls;
* each (rank, stream) pair is a FIFO **execution stream** that runs kernels,
  copies and collectives one at a time;
* CUDA events and collectives are resolved through the wait maps of
  Algorithm 3, which is where pipeline bubbles and compute/communication
  overlap emerge from first principles.

Durations come from a pluggable :class:`DurationProvider`; the engine itself
is shared between Maya's prediction path and the testbed reference model.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.collator import CollatedTrace, CollectiveResolution
from repro.core.simulator.providers import DurationProvider
from repro.core.simulator.report import RankReport, SimulationReport
from repro.core.simulator.waitmaps import (
    CollectiveWaitMap,
    CudaEventWaitMap,
    P2PWaitMap,
)
from repro.core.trace import TraceEvent, TraceEventKind, WorkerTrace
from repro.hardware.cluster import ClusterSpec


class SimulationError(RuntimeError):
    """Raised when the simulation cannot make progress (deadlock) or is
    otherwise mis-configured."""


@dataclass
class SimulationConfig:
    """Tunables of the simulation engine."""

    #: Ranks to simulate explicitly; ``None`` simulates the full world.
    simulate_ranks: Optional[Sequence[int]] = None
    #: Extra per-kernel slowdown applied while a collective is in flight on
    #: the same device.  Models SM contention; the paper notes Maya does NOT
    #: model this (Section 8), so it is enabled only for the testbed.
    sm_contention_factor: float = 1.0
    #: Fixed receiver-side completion overhead for point-to-point transfers.
    p2p_recv_overhead: float = 3.0e-6
    #: Whether host-side delays captured during emulation are replayed.
    include_host_overheads: bool = True
    #: Safety valve: maximum number of processed simulation events.
    max_events: int = 50_000_000


# Internal host states.
_HOST_RUNNING = 0
_HOST_BLOCKED = 1
_HOST_DONE = 2


class _Stream:
    """FIFO execution stream of one simulated rank."""

    __slots__ = ("rank", "stream_id", "queue", "busy", "available_time",
                 "blocked", "sync_waiters", "busy_compute", "busy_comm",
                 "busy_memcpy")

    def __init__(self, rank: int, stream_id: int) -> None:
        self.rank = rank
        self.stream_id = stream_id
        self.queue: Deque[TraceEvent] = deque()
        self.busy = False
        self.blocked = False
        self.available_time = 0.0
        self.sync_waiters: List["_Host"] = []
        self.busy_compute = 0.0
        self.busy_comm = 0.0
        self.busy_memcpy = 0.0

    def drained(self) -> bool:
        return not self.busy and not self.queue


class _Host:
    """Host dispatch queue of one simulated rank."""

    __slots__ = ("rank", "events", "cursor", "state", "time", "waiting_streams",
                 "busy_time", "markers")

    def __init__(self, rank: int, trace: WorkerTrace) -> None:
        self.rank = rank
        self.events = trace.events
        self.cursor = 0
        self.state = _HOST_RUNNING
        self.time = 0.0
        self.waiting_streams: Set[Tuple[int, int]] = set()
        self.busy_time = 0.0
        self.markers: Dict[str, float] = {}


class ClusterSimulator:
    """Replays a collated trace on a simulated cluster."""

    def __init__(self, cluster: ClusterSpec, provider: DurationProvider,
                 config: Optional[SimulationConfig] = None) -> None:
        self.cluster = cluster
        self.provider = provider
        self.config = config or SimulationConfig()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def simulate(self, collated: CollatedTrace,
                 iterations: int = 1) -> SimulationReport:
        state = _SimulationState(self, collated)
        state.run()
        return state.build_report(iterations)


class _SimulationState:
    """Mutable state of one simulation run."""

    def __init__(self, simulator: ClusterSimulator,
                 collated: CollatedTrace) -> None:
        self.sim = simulator
        self.collated = collated
        self.config = simulator.config
        self.provider = simulator.provider

        if self.config.simulate_ranks is not None:
            ranks = sorted(set(self.config.simulate_ranks))
        else:
            ranks = list(range(collated.world_size))
        missing = [rank for rank in ranks if rank not in collated.representative]
        if missing:
            raise SimulationError(f"no trace available for ranks {missing[:8]}")
        self.ranks = ranks
        self.rank_set = set(ranks)

        self.hosts: Dict[int, _Host] = {
            rank: _Host(rank, collated.trace_for(rank)) for rank in ranks
        }
        self.streams: Dict[Tuple[int, int], _Stream] = {}
        self.event_map = CudaEventWaitMap()
        self.collective_map = CollectiveWaitMap()
        self.p2p_map = P2PWaitMap()
        #: Number of in-flight collectives per rank (SM-contention modelling).
        self.inflight_collectives: Dict[int, int] = {rank: 0 for rank in ranks}
        #: Cache of resolved communicator groups per (rank, tag, rep group).
        self._group_cache: Dict[Tuple, Tuple[int, ...]] = {}

        self.queue: List[Tuple[float, int, int, object]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self.processed_events = 0
        self.rank_reports: Dict[int, RankReport] = {
            rank: RankReport(rank=rank) for rank in ranks
        }

    # ------------------------------------------------------------------
    # event queue helpers
    # ------------------------------------------------------------------
    _HOST_READY = 0
    _OP_END = 1

    def _schedule(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self.queue, (time, next(self._counter), kind, payload))

    def _stream(self, rank: int, stream_id: Optional[int]) -> _Stream:
        key = (rank, stream_id or 0)
        stream = self.streams.get(key)
        if stream is None:
            stream = _Stream(rank, key[1])
            self.streams[key] = stream
        return stream

    # ------------------------------------------------------------------
    # main loop (Algorithm 1)
    # ------------------------------------------------------------------
    def run(self) -> None:
        for host in self.hosts.values():
            self._advance_host(host, 0.0)
        while self.queue:
            time, _, kind, payload = heapq.heappop(self.queue)
            self.now = max(self.now, time)
            self.processed_events += 1
            if self.processed_events > self.config.max_events:
                raise SimulationError(
                    f"simulation exceeded max_events budget "
                    f"({self.config.max_events:,}): world size "
                    f"{self.collated.world_size} with {len(self.ranks)} "
                    f"simulated ranks processed {self.processed_events:,} "
                    f"events at simulated time {self.now:.3f}s"
                )
            if kind == self._HOST_READY:
                host = payload
                if host.state != _HOST_DONE:
                    host.state = _HOST_RUNNING
                    self._advance_host(host, time)
            elif kind == self._OP_END:
                stream, event = payload
                self._finish_op(stream, event, time)
        self._check_finished()

    def _check_finished(self) -> None:
        stuck_hosts = [host.rank for host in self.hosts.values()
                       if host.state != _HOST_DONE]
        stuck_streams = [key for key, stream in self.streams.items()
                         if not stream.drained()]
        if stuck_hosts or stuck_streams:
            pending_colls = list(self.collective_map.pending().keys())[:4]
            pending_p2p = list(self.p2p_map.pending().keys())[:4]
            raise SimulationError(
                "simulation deadlocked: "
                f"hosts blocked on ranks {stuck_hosts[:8]}, "
                f"streams stuck {stuck_streams[:8]}, "
                f"pending collectives {pending_colls}, "
                f"pending p2p {pending_p2p}"
            )

    # ------------------------------------------------------------------
    # host dispatch queue
    # ------------------------------------------------------------------
    def _advance_host(self, host: _Host, now: float) -> None:
        host.time = max(host.time, now)
        events = host.events
        while host.cursor < len(events):
            event = events[host.cursor]
            kind = event.kind

            if kind is TraceEventKind.HOST_DELAY:
                host.cursor += 1
                if not self.config.include_host_overheads:
                    continue
                duration = event.duration or 0.0
                host.busy_time += duration
                host.time += duration
                self.rank_reports[host.rank].host_time += duration
                self._schedule(host.time, self._HOST_READY, host)
                return

            if kind is TraceEventKind.MARKER:
                host.markers[str(event.params.get("label", ""))] = host.time
                host.cursor += 1
                continue

            if kind in (TraceEventKind.KERNEL, TraceEventKind.MEMCPY,
                        TraceEventKind.MEMSET, TraceEventKind.COLLECTIVE,
                        TraceEventKind.EVENT_RECORD,
                        TraceEventKind.STREAM_WAIT_EVENT):
                if (kind is TraceEventKind.EVENT_RECORD
                        and (event.params.get("create")
                             or event.params.get("destroy"))):
                    host.cursor += 1
                    continue
                host.cursor += 1
                stream = self._stream(host.rank, event.stream)
                stream.queue.append(event)
                self._try_start_stream(stream, host.time)
                continue

            if kind is TraceEventKind.EVENT_SYNCHRONIZE:
                key = CudaEventWaitMap.key(host.rank, event.wait_event or 0,
                                           int(event.params.get("version", 0)))
                if self.event_map.is_complete(key):
                    host.time = max(host.time, self.event_map.completion_time(key))
                    host.cursor += 1
                    continue
                self.event_map.block(key, ("host", host))
                host.state = _HOST_BLOCKED
                return

            if kind is TraceEventKind.STREAM_SYNCHRONIZE:
                stream = self._stream(host.rank, event.stream)
                if stream.drained():
                    host.time = max(host.time, stream.available_time)
                    host.cursor += 1
                    continue
                stream.sync_waiters.append(host)
                host.waiting_streams = {(host.rank, stream.stream_id)}
                host.state = _HOST_BLOCKED
                host.cursor += 1
                return

            if kind is TraceEventKind.DEVICE_SYNCHRONIZE:
                pending = {key for key, stream in self.streams.items()
                           if key[0] == host.rank and not stream.drained()}
                if not pending:
                    latest = max((stream.available_time
                                  for key, stream in self.streams.items()
                                  if key[0] == host.rank), default=host.time)
                    host.time = max(host.time, latest)
                    host.cursor += 1
                    continue
                for key in pending:
                    self.streams[key].sync_waiters.append(host)
                host.waiting_streams = pending
                host.state = _HOST_BLOCKED
                host.cursor += 1
                return

            # Unknown event kinds are ignored (forward compatibility).
            host.cursor += 1

        host.state = _HOST_DONE
        self.rank_reports[host.rank].finish_time = max(
            self.rank_reports[host.rank].finish_time, host.time)

    def _release_host(self, host: _Host, time: float) -> None:
        if host.state == _HOST_DONE:
            return
        host.state = _HOST_RUNNING
        self._schedule(time, self._HOST_READY, host)

    def _notify_stream_drained(self, stream: _Stream, time: float) -> None:
        if not stream.drained() or not stream.sync_waiters:
            return
        waiters, stream.sync_waiters = stream.sync_waiters, []
        for host in waiters:
            host.waiting_streams.discard((stream.rank, stream.stream_id))
            if not host.waiting_streams:
                host.time = max(host.time, time)
                self._release_host(host, time)
            else:
                # Still waiting on other streams (device synchronize).
                stream_key_pending = False
                for key in list(host.waiting_streams):
                    pending_stream = self.streams.get(key)
                    if pending_stream is None or pending_stream.drained():
                        host.waiting_streams.discard(key)
                    else:
                        stream_key_pending = True
                if not stream_key_pending:
                    host.time = max(host.time, time)
                    self._release_host(host, time)

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------
    def _try_start_stream(self, stream: _Stream, now: float) -> None:
        self._drain_stream(stream, now)
        if stream.drained():
            self._notify_stream_drained(stream, max(stream.available_time, now))

    def _drain_stream(self, stream: _Stream, now: float) -> None:
        while not stream.busy and not stream.blocked and stream.queue:
            event = stream.queue[0]
            start = max(stream.available_time, now)
            kind = event.kind

            if kind is TraceEventKind.EVENT_RECORD:
                stream.queue.popleft()
                stream.available_time = start
                key = CudaEventWaitMap.key(stream.rank, event.event or 0,
                                           int(event.params.get("version", 0)))
                for waiter in self.event_map.record(key, start):
                    self._release_waiter(waiter, start)
                continue

            if kind is TraceEventKind.STREAM_WAIT_EVENT:
                key = CudaEventWaitMap.key(stream.rank, event.wait_event or 0,
                                           int(event.params.get("version", 0)))
                if self.event_map.is_complete(key):
                    stream.queue.popleft()
                    stream.available_time = max(start,
                                                self.event_map.completion_time(key))
                    continue
                stream.blocked = True
                self.event_map.block(key, ("stream", stream))
                return

            if kind is TraceEventKind.COLLECTIVE:
                if self._start_collective(stream, event, start):
                    continue
                return

            # Plain device work: kernels, copies, memsets.
            duration = self.provider.kernel_duration(stream.rank, event)
            if (self.config.sm_contention_factor > 1.0
                    and self.inflight_collectives.get(stream.rank, 0) > 0
                    and kind is TraceEventKind.KERNEL):
                duration *= self.config.sm_contention_factor
            stream.queue.popleft()
            stream.busy = True
            end = start + duration
            stream.available_time = end
            report = self.rank_reports[stream.rank]
            if kind is TraceEventKind.KERNEL:
                stream.busy_compute += duration
                report.compute_time += duration
                report.kernel_count += 1
            else:
                stream.busy_memcpy += duration
                report.memcpy_time += duration
            self._schedule(end, self._OP_END, (stream, event))
            return

    def _release_waiter(self, waiter: Tuple[str, object], time: float) -> None:
        kind, target = waiter
        if kind == "host":
            host = target
            host.time = max(host.time, time)
            host.cursor += 1  # consume the EVENT_SYNCHRONIZE entry
            self._release_host(host, time)
        elif kind == "stream":
            stream = target
            stream.blocked = False
            stream.queue.popleft()  # consume the STREAM_WAIT_EVENT entry
            stream.available_time = max(stream.available_time, time)
            self._try_start_stream(stream, time)
        elif kind == "recv":
            stream, event, resolution, group, recv_ready = target
            self._complete_recv(stream, event, resolution, group, recv_ready,
                                time)

    # ------------------------------------------------------------------
    # collectives and point-to-point transfers
    # ------------------------------------------------------------------
    def _resolve_group(self, rank: int,
                       resolution: CollectiveResolution) -> Tuple[int, ...]:
        cache_key = (rank, resolution.tag, resolution.representative_group)
        group = self._group_cache.get(cache_key)
        if group is None:
            group = tuple(self.collated.group_resolver.group_for(
                rank, resolution.tag, resolution.representative_group))
            self._group_cache[cache_key] = group
        return group

    def _start_collective(self, stream: _Stream, event: TraceEvent,
                          start: float) -> bool:
        """Start a collective at the head of ``stream``.

        Returns True when the stream can keep draining immediately (the
        operation resolved to a local no-op), False when the stream is now
        busy or blocked.
        """
        resolution = self.collated.resolution_for(stream.rank, event)
        if resolution is None:
            # A collective without resolution metadata: treat as local no-op.
            stream.queue.popleft()
            stream.available_time = start
            return True
        group = self._resolve_group(stream.rank, resolution)
        key = resolution.key_for(stream.rank, self.collated.group_resolver)

        if resolution.is_p2p:
            self._start_p2p(stream, event, resolution, group, key, start)
            return False

        expected = sum(1 for rank in group if rank in self.rank_set)
        expected = max(expected, 1)
        instance = self.collective_map.join(key, expected, stream.rank,
                                            stream.stream_id, start)
        if instance is None:
            stream.blocked = True
            return False
        duration = self.provider.collective_duration(stream.rank, event,
                                                      resolution, group)
        coll_start = instance.start_time
        end = coll_start + duration
        for rank, stream_id, ready in instance.joined:
            member = self._stream(rank, stream_id)
            member.blocked = False
            if member.queue:
                member.queue.popleft()
            member.busy = True
            member.available_time = end
            report = self.rank_reports[rank]
            report.communication_time += duration
            report.exposed_communication_time += max(end - ready, 0.0) - \
                max(coll_start - ready, 0.0)
            report.collective_count += 1
            member.busy_comm += duration
            self.inflight_collectives[rank] = (
                self.inflight_collectives.get(rank, 0) + 1)
            self._schedule(end, self._OP_END, (member, event))
        return False

    def _start_p2p(self, stream: _Stream, event: TraceEvent,
                   resolution: CollectiveResolution, group: Tuple[int, ...],
                   key: Tuple, start: float) -> None:
        pair: Tuple[int, ...]
        if resolution.peer_position is not None and len(group) > max(
                resolution.self_position, resolution.peer_position):
            pair = (group[resolution.self_position],
                    group[resolution.peer_position])
        else:
            pair = tuple(group[:2]) if len(group) >= 2 else group
        duration = self.provider.collective_duration(stream.rank, event,
                                                      resolution, pair)
        report = self.rank_reports[stream.rank]

        if resolution.op == "send":
            stream.queue.popleft()
            stream.busy = True
            end = start + duration
            stream.available_time = end
            stream.busy_comm += duration
            report.communication_time += duration
            report.collective_count += 1
            waiter = self.p2p_map.post_send(key, end)
            if waiter is not None:
                self._release_waiter(("recv", waiter), end)
            self._schedule(end, self._OP_END, (stream, event))
            return

        # Receive: completes once the matching send's payload has arrived.
        send_end = self.p2p_map.post_recv(
            key, (stream, event, resolution, group, start), start)
        if send_end is None:
            stream.blocked = True
            return
        self._complete_recv(stream, event, resolution, group, start,
                            send_end)

    def _complete_recv(self, stream: _Stream, event: TraceEvent,
                       resolution: CollectiveResolution,
                       group: Tuple[int, ...], recv_ready: float,
                       send_end: float) -> None:
        end = max(recv_ready, send_end) + self.config.p2p_recv_overhead
        stream.blocked = False
        if stream.queue:
            stream.queue.popleft()
        stream.busy = True
        stream.available_time = end
        duration = max(end - recv_ready, 0.0)
        stream.busy_comm += duration
        report = self.rank_reports[stream.rank]
        report.communication_time += duration
        report.exposed_communication_time += duration
        report.collective_count += 1
        self._schedule(end, self._OP_END, (stream, event))

    # ------------------------------------------------------------------
    # op completion
    # ------------------------------------------------------------------
    def _finish_op(self, stream: _Stream, event: TraceEvent,
                   time: float) -> None:
        stream.busy = False
        stream.available_time = max(stream.available_time, time)
        if event.kind is TraceEventKind.COLLECTIVE:
            count = self.inflight_collectives.get(stream.rank, 0)
            if count > 0:
                self.inflight_collectives[stream.rank] = count - 1
        report = self.rank_reports[stream.rank]
        report.finish_time = max(report.finish_time, time)
        self._try_start_stream(stream, time)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def build_report(self, iterations: int) -> SimulationReport:
        finish_times = [report.finish_time for report in self.rank_reports.values()]
        host_times = [host.time for host in self.hosts.values()]
        stream_times = [stream.available_time for stream in self.streams.values()]
        total = max(finish_times + host_times + stream_times + [0.0])

        markers: Dict[str, Dict[int, float]] = {}
        for host in self.hosts.values():
            for label, timestamp in host.markers.items():
                markers.setdefault(label, {})[host.rank] = timestamp

        return SimulationReport(
            total_time=total,
            iterations=iterations,
            rank_reports=self.rank_reports,
            peak_memory_bytes=self.collated.peak_memory_bytes(),
            oom=self.collated.any_oom(),
            markers=markers,
            metadata={
                "simulated_ranks": len(self.ranks),
                "processed_events": self.processed_events,
                "world_size": self.collated.world_size,
            },
        )
