"""Synchronisation wait maps (Algorithm 3 in the paper).

Three structures track cross-stream and cross-device synchronisation during
simulation:

* :class:`CudaEventWaitMap` -- maps ``(device, event id, version)`` to the
  streams / hosts blocked on it; versions track re-use of the same event
  handle.
* :class:`CollectiveWaitMap` -- maps a collective's global key to the
  participants that have joined so far; the collective proceeds once the
  last expected participant arrives.
* :class:`P2PWaitMap` -- pairs point-to-point sends and receives.  Sends
  complete eagerly (the payload leaves the sender after its wire time);
  receives complete when the matched send's data has arrived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class EventRecord:
    """Completion state of one (device, event id, version)."""

    completed: bool = False
    timestamp: float = 0.0


class CudaEventWaitMap:
    """Tracks CUDA event completion and the resources waiting on them."""

    def __init__(self) -> None:
        self._records: Dict[Tuple, EventRecord] = {}
        self._waiters: Dict[Tuple, List[object]] = {}

    @staticmethod
    def key(device_rank: int, event_id: int, version: int) -> Tuple:
        return (device_rank, event_id, version)

    def record(self, key: Tuple, timestamp: float) -> List[object]:
        """Mark the event recorded; return the waiters to release."""
        self._records[key] = EventRecord(completed=True, timestamp=timestamp)
        return self._waiters.pop(key, [])

    def is_complete(self, key: Tuple) -> bool:
        # Version 0 means "never recorded"; CUDA treats waiting on such an
        # event as an immediate no-op.
        if key[2] == 0:
            return True
        record = self._records.get(key)
        return record is not None and record.completed

    def completion_time(self, key: Tuple) -> float:
        record = self._records.get(key)
        return record.timestamp if record else 0.0

    def block(self, key: Tuple, waiter: object) -> None:
        self._waiters.setdefault(key, []).append(waiter)


@dataclass
class CollectiveInstance:
    """In-flight collective: participants that have joined so far."""

    expected: int
    joined: List[Tuple[int, int, float]] = field(default_factory=list)
    #: (rank, stream_id, ready_time) of each joined participant.

    def join(self, rank: int, stream_id: int, ready_time: float) -> bool:
        """Register a participant; return True if the collective is complete."""
        self.joined.append((rank, stream_id, ready_time))
        return len(self.joined) >= self.expected

    @property
    def start_time(self) -> float:
        return max(ready for _, _, ready in self.joined) if self.joined else 0.0


class CollectiveWaitMap:
    """Tracks group collectives keyed by their global matching key."""

    def __init__(self) -> None:
        self._instances: Dict[Tuple, CollectiveInstance] = {}

    def join(self, key: Tuple, expected: int, rank: int, stream_id: int,
             ready_time: float) -> Optional[CollectiveInstance]:
        """Join ``rank`` to the collective; return the instance when complete."""
        instance = self._instances.get(key)
        if instance is None:
            instance = CollectiveInstance(expected=expected)
            self._instances[key] = instance
        if instance.join(rank, stream_id, ready_time):
            return self._instances.pop(key)
        return None

    def pending(self) -> Dict[Tuple, CollectiveInstance]:
        """Collectives still waiting for participants (deadlock diagnostics)."""
        return dict(self._instances)


@dataclass
class P2PTransfer:
    """State of one matched send/recv pair."""

    send_end: Optional[float] = None
    recv_waiter: Optional[object] = None
    recv_ready: Optional[float] = None


class P2PWaitMap:
    """Pairs sends and receives by their global p2p key."""

    def __init__(self) -> None:
        self._transfers: Dict[Tuple, P2PTransfer] = {}

    def _get(self, key: Tuple) -> P2PTransfer:
        transfer = self._transfers.get(key)
        if transfer is None:
            transfer = P2PTransfer()
            self._transfers[key] = transfer
        return transfer

    def post_send(self, key: Tuple, send_end: float) -> Optional[object]:
        """Record the send completion; return a blocked receiver if any."""
        transfer = self._get(key)
        transfer.send_end = send_end
        if transfer.recv_waiter is not None:
            waiter = transfer.recv_waiter
            transfer.recv_waiter = None
            return waiter
        return None

    def post_recv(self, key: Tuple, waiter: object,
                  ready_time: float) -> Optional[float]:
        """Register a receive.

        Returns the send completion time if the payload has already arrived,
        otherwise records the waiter and returns ``None``.
        """
        transfer = self._get(key)
        if transfer.send_end is not None:
            return transfer.send_end
        transfer.recv_waiter = waiter
        transfer.recv_ready = ready_time
        return None

    def send_end(self, key: Tuple) -> Optional[float]:
        transfer = self._transfers.get(key)
        return transfer.send_end if transfer else None

    def pending(self) -> Dict[Tuple, P2PTransfer]:
        """Transfers with an unmatched side (deadlock diagnostics)."""
        return {key: transfer for key, transfer in self._transfers.items()
                if transfer.recv_waiter is not None}
