"""Event-driven cluster simulator.

Implements stage (4) of Figure 5: the annotated job trace is replayed
through a discrete-event simulation of the cluster -- host dispatch queues,
per-device execution streams, a CUDA-event wait map and a network collective
wait map -- reproducing pipeline bubbles, compute/communication overlap and
synchronisation stalls exactly as Algorithms 1-3 in the paper's appendix
describe.
"""

from repro.core.simulator.engine import (
    ClusterSimulator,
    SimulationConfig,
    SimulationError,
)
from repro.core.simulator.providers import (
    DurationProvider,
    EstimatedDurationProvider,
    GroundTruthDurationProvider,
)
from repro.core.simulator.report import SimulationReport

__all__ = [
    "ClusterSimulator",
    "SimulationConfig",
    "SimulationError",
    "DurationProvider",
    "EstimatedDurationProvider",
    "GroundTruthDurationProvider",
    "SimulationReport",
]
