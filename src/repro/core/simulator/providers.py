"""Duration providers: where the simulator gets per-operation runtimes.

The same discrete-event engine is used both by Maya (durations come from the
pluggable estimator suite) and by the testbed reference model (durations come
from the ground-truth cost models, with per-invocation jitter).  Keeping the
engine identical and swapping only the provider mirrors the paper's framing:
the difference between a prediction and a measurement is exactly the quality
of the per-operation runtimes plus the effects the simulator chooses to
model.

Providers expose two granularities:

* the per-event protocol (:meth:`DurationProvider.kernel_duration` /
  :meth:`DurationProvider.collective_duration`), which any provider must
  implement, and
* an optional batch :meth:`annotate_trace` pass producing
  :class:`TraceAnnotations` -- flat, integer-indexed per-rank duration
  arrays (kernels and materialized host delays, the latter re-applying the
  structured trace's replay-time jitter) plus pre-resolved communicator
  groups and matching keys -- so the
  engine's inner event loop does array reads instead of per-event
  ``signature()`` / dict / provider calls.  Annotations are memoized per
  (collated-trace content signature, simulated-rank set) on the provider
  instance, which is exactly the "provider fingerprint": the prediction
  service shares one provider across trials, so repeated simulations of the
  same artifacts skip annotation entirely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.core.collator import CollectiveResolution
from repro.core.columnar import columnar_worker_trace, materialize_host_delays
from repro.core.estimators.suite import EstimatorSuite
from repro.core.trace import TraceEvent, TraceEventKind
from repro.hardware.cluster import ClusterSpec
from repro.hardware.host_model import host_delay_materializer
from repro.hardware.kernel_cost import CollectiveCostModel, KernelCostModel
from repro.hardware.noise import fast_noise, stable_hash

if TYPE_CHECKING:  # pragma: no cover - import used for type checking only
    from repro.core.collator import CollatedTrace

#: Event kinds annotated into the flat kernel-duration arrays.
_PLAIN_DEVICE_KINDS = (TraceEventKind.KERNEL, TraceEventKind.MEMCPY,
                       TraceEventKind.MEMSET)

#: Bound on the per-provider annotation memo (FIFO eviction).
_ANNOTATION_MEMO_LIMIT = 32


@dataclass
class TraceAnnotations:
    """Pre-resolved durations and communicator groups for one simulation.

    ``kernel_durations[rank][seq]`` is the duration of the plain device-work
    event with that sequence number in the rank's (representative) trace;
    non-device slots hold 0.0.  ``collectives[rank][seq]`` carries the
    ``(resolution, group, key, duration)`` tuple the engine would otherwise
    recompute per event.  ``host_durations[rank][seq]`` is the materialized
    ``HOST_DELAY`` duration -- for structured events the recorded base cost
    times the replay-time jitter factor (``fast_noise`` over the class seed
    plus call seq), for legacy events the recorded value.  All are keyed by
    the *simulated* rank, so borrowed representative traces resolve to the
    borrowing rank's own groups; host delays are a pure function of the
    representative trace, so borrowing ranks share one array.
    """

    kernel_durations: Dict[int, List[float]] = field(default_factory=dict)
    collectives: Dict[int, Dict[int, Tuple[CollectiveResolution,
                                           Tuple[int, ...], Tuple, float]]] = \
        field(default_factory=dict)
    host_durations: Dict[int, List[float]] = field(default_factory=dict)


def build_trace_annotations(provider: "DurationProvider",
                            collated: "CollatedTrace",
                            ranks: Sequence[int],
                            rank_invariant_kernels: bool = False
                            ) -> TraceAnnotations:
    """One-pass annotation of ``collated`` for the given simulated ranks.

    When ``rank_invariant_kernels`` is set (durations depend only on the
    event's shape signature, not on the rank replaying it), the per-event
    kernel pass runs once per *representative* trace and is shared by every
    rank borrowing it; collectives are always resolved per rank because
    group remapping is rank-specific.
    """
    annotations = TraceAnnotations()
    shared_kernels: Dict[int, List[float]] = {}
    shared_hosts: Dict[int, List[float]] = {}
    for rank in ranks:
        representative = collated.representative[rank]
        trace = collated.trace_for(rank)
        events = trace.events
        size = (events[-1].seq + 1) if events else 0

        delays = shared_hosts.get(representative)
        if delays is None:
            # Vectorized materialization over the trace columns (the
            # structured-jitter fast_noise stream is computed array-wide,
            # bit-identical to the per-event closure); the object walk
            # remains the numpy-less fallback.
            cols = columnar_worker_trace(trace)
            if cols is not None:
                delays = materialize_host_delays(cols, trace.metadata, size)
            if delays is None:
                delays = [0.0] * size
                materialize = host_delay_materializer(trace.metadata)
                for event in events:
                    if event.kind is TraceEventKind.HOST_DELAY:
                        delays[event.seq] = materialize(event)
            shared_hosts[representative] = delays
        annotations.host_durations[rank] = delays

        durations = shared_kernels.get(representative)
        if durations is None:
            durations = [0.0] * size
            for event in events:
                if event.kind in _PLAIN_DEVICE_KINDS:
                    durations[event.seq] = provider.kernel_duration(rank, event)
            if rank_invariant_kernels:
                shared_kernels[representative] = durations
        annotations.kernel_durations[rank] = durations

        resolved: Dict[int, Tuple] = {}
        for event in events:
            if event.kind is not TraceEventKind.COLLECTIVE:
                continue
            resolution = collated.resolution_for(rank, event)
            if resolution is None:
                continue
            group = tuple(collated.group_resolver.group_for(
                rank, resolution.tag, resolution.representative_group))
            key = resolution.key_for(rank, collated.group_resolver)
            if resolution.is_p2p:
                if (resolution.peer_position is not None
                        and len(group) > max(resolution.self_position,
                                             resolution.peer_position)):
                    pair: Tuple[int, ...] = (group[resolution.self_position],
                                             group[resolution.peer_position])
                else:
                    pair = tuple(group[:2]) if len(group) >= 2 else group
                duration = provider.collective_duration(rank, event,
                                                        resolution, pair)
            else:
                duration = provider.collective_duration(rank, event,
                                                        resolution, group)
            resolved[event.seq] = (resolution, group, key, duration)
        annotations.collectives[rank] = resolved
    return annotations


class _AnnotationMemoMixin:
    """Shared memoization of :func:`build_trace_annotations` results."""

    #: Whether kernel durations ignore the simulated rank (lets annotation
    #: share one per-representative pass across borrowing ranks).
    rank_invariant_kernels = False

    def _annotation_memo(self) -> Tuple[threading.Lock,
                                        Dict[Tuple, TraceAnnotations]]:
        state = getattr(self, "_annotations_cache", None)
        if state is None:
            state = (threading.Lock(), {})
            self._annotations_cache = state
        return state

    def __getstate__(self) -> Dict[str, object]:
        """Drop the annotation memo (it holds a lock) when pickled.

        Providers travel inside the socket backend's ``warm`` bootstrap
        payload; the memo is a pure cache, so the receiving worker simply
        rebuilds it lazily on first simulation.
        """
        state = self.__dict__.copy()
        state.pop("_annotations_cache", None)
        return state

    def annotate_trace(self, collated: "CollatedTrace",
                       ranks: Sequence[int]) -> TraceAnnotations:
        """Memoized batch annotation of a collated trace for ``ranks``.

        Held under a per-provider lock: the service's thread backend shares
        one provider across workers, and serialising here both keeps the
        FIFO eviction race-free and makes concurrent trials over the same
        artifacts annotate once instead of once per thread.
        """
        lock, memo = self._annotation_memo()
        key = (collated.content_signature(), tuple(ranks))
        with lock:
            cached = memo.get(key)
            if cached is not None:
                return cached
            annotations = build_trace_annotations(
                self, collated, ranks,
                rank_invariant_kernels=self.rank_invariant_kernels)
            while len(memo) >= _ANNOTATION_MEMO_LIMIT:
                memo.pop(next(iter(memo)))
            memo[key] = annotations
        return annotations


class DurationProvider(Protocol):
    """Supplies operation durations to the simulation engine."""

    def kernel_duration(self, rank: int, event: TraceEvent) -> float:
        """Duration of a kernel / copy / memset event, in seconds."""
        ...

    def collective_duration(self, rank: int, event: TraceEvent,
                            resolution: CollectiveResolution,
                            group: Sequence[int]) -> float:
        """On-the-wire duration of a collective, in seconds."""
        ...


class EstimatedDurationProvider(_AnnotationMemoMixin):
    """Maya's provider: durations come from the estimator suite.

    Kernel predictions are cached by shape signature -- a training iteration
    launches the same few dozen distinct kernels thousands of times, so this
    keeps annotation cost negligible (the "Runtime prediction" row of
    Table 6).
    """

    #: Durations are a pure function of the event's shape signature: the
    #: engine may fold repeated steady-state iterations (identical windows
    #: receive identical durations) and annotation passes are shared across
    #: ranks replaying one representative trace.
    supports_iteration_folding = True
    rank_invariant_kernels = True

    def __init__(self, suite: EstimatorSuite, cluster: ClusterSpec) -> None:
        self.suite = suite
        self.cluster = cluster
        self._kernel_cache: Dict[Tuple, float] = {}
        self._collective_cache: Dict[Tuple, float] = {}

    def kernel_duration(self, rank: int, event: TraceEvent) -> float:
        key = (event.kernel_class, event.signature())
        cached = self._kernel_cache.get(key)
        if cached is None:
            cached = self.suite.estimate_kernel(event.kernel_class or "elementwise",
                                                event.params)
            self._kernel_cache[key] = cached
        return cached

    def collective_duration(self, rank: int, event: TraceEvent,
                            resolution: CollectiveResolution,
                            group: Sequence[int]) -> float:
        key = (resolution.op, resolution.nbytes, tuple(group))
        cached = self._collective_cache.get(key)
        if cached is None:
            cached = self.suite.estimate_collective(
                resolution.op, resolution.nbytes, group,
                self.cluster.gpus_per_node)
            self._collective_cache[key] = cached
        return cached


class GroundTruthDurationProvider(_AnnotationMemoMixin):
    """Testbed provider: ground-truth costs plus per-invocation jitter.

    This is the stand-in for running the workload on physical GPUs.  The
    jitter term is keyed on (rank, event sequence number) so repeated
    simulations of the same configuration reproduce the same "measurement",
    while different kernels see independent run-to-run variation that no
    estimator can learn.
    """

    #: Jitter keys on the event sequence number, so structurally identical
    #: iterations still get different per-invocation durations: folding
    #: would change the measurement.  Annotation remains valid (the jitter
    #: is a pure function of (rank, seq)), but it is rank-dependent.
    supports_iteration_folding = False
    rank_invariant_kernels = False

    def __init__(self, cluster: ClusterSpec,
                 kernel_cost_model: Optional[KernelCostModel] = None,
                 collective_cost_model: Optional[CollectiveCostModel] = None,
                 run_jitter: float = 0.012) -> None:
        self.cluster = cluster
        self.kernel_cost_model = kernel_cost_model or KernelCostModel()
        self.collective_cost_model = collective_cost_model or CollectiveCostModel()
        self.run_jitter = run_jitter
        self._base_cache: Dict[Tuple, float] = {}

    def kernel_duration(self, rank: int, event: TraceEvent) -> float:
        key = (event.kernel_class, event.signature())
        base = self._base_cache.get(key)
        if base is None:
            base = self.kernel_cost_model.kernel_time(
                self.cluster.gpu, event.kernel_class or "elementwise",
                event.params, invocation=None)
            self._base_cache[key] = base
        jitter = fast_noise(rank * 1_000_003 + event.seq, scale=self.run_jitter)
        return base * jitter

    def collective_duration(self, rank: int, event: TraceEvent,
                            resolution: CollectiveResolution,
                            group: Sequence[int]) -> float:
        interconnect = self.cluster.interconnect
        bandwidth = interconnect.effective_bus_bandwidth(
            group, self.cluster.gpus_per_node)
        latency = interconnect.base_latency(group, self.cluster.gpus_per_node)
        base = self.collective_cost_model.collective_time(
            op=resolution.op, nbytes=resolution.nbytes, ranks=len(group),
            bus_bandwidth=bandwidth, latency=latency, invocation=None)
        # stable_hash, not hash(): builtin string hashing is randomised per
        # process and would make "measurements" irreproducible across runs.
        jitter = fast_noise(stable_hash("coll", min(group, default=0),
                                        event.seq),
                            scale=self.run_jitter)
        return base * jitter
