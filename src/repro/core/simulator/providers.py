"""Duration providers: where the simulator gets per-operation runtimes.

The same discrete-event engine is used both by Maya (durations come from the
pluggable estimator suite) and by the testbed reference model (durations come
from the ground-truth cost models, with per-invocation jitter).  Keeping the
engine identical and swapping only the provider mirrors the paper's framing:
the difference between a prediction and a measurement is exactly the quality
of the per-operation runtimes plus the effects the simulator chooses to
model.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Sequence, Tuple

from repro.core.collator import CollectiveResolution
from repro.core.estimators.suite import EstimatorSuite
from repro.core.trace import TraceEvent
from repro.hardware.cluster import ClusterSpec
from repro.hardware.kernel_cost import CollectiveCostModel, KernelCostModel
from repro.hardware.noise import fast_noise, stable_hash


class DurationProvider(Protocol):
    """Supplies operation durations to the simulation engine."""

    def kernel_duration(self, rank: int, event: TraceEvent) -> float:
        """Duration of a kernel / copy / memset event, in seconds."""
        ...

    def collective_duration(self, rank: int, event: TraceEvent,
                            resolution: CollectiveResolution,
                            group: Sequence[int]) -> float:
        """On-the-wire duration of a collective, in seconds."""
        ...


class EstimatedDurationProvider:
    """Maya's provider: durations come from the estimator suite.

    Kernel predictions are cached by shape signature -- a training iteration
    launches the same few dozen distinct kernels thousands of times, so this
    keeps annotation cost negligible (the "Runtime prediction" row of
    Table 6).
    """

    def __init__(self, suite: EstimatorSuite, cluster: ClusterSpec) -> None:
        self.suite = suite
        self.cluster = cluster
        self._kernel_cache: Dict[Tuple, float] = {}
        self._collective_cache: Dict[Tuple, float] = {}

    def kernel_duration(self, rank: int, event: TraceEvent) -> float:
        key = (event.kernel_class, event.signature())
        cached = self._kernel_cache.get(key)
        if cached is None:
            cached = self.suite.estimate_kernel(event.kernel_class or "elementwise",
                                                event.params)
            self._kernel_cache[key] = cached
        return cached

    def collective_duration(self, rank: int, event: TraceEvent,
                            resolution: CollectiveResolution,
                            group: Sequence[int]) -> float:
        key = (resolution.op, resolution.nbytes, tuple(group))
        cached = self._collective_cache.get(key)
        if cached is None:
            cached = self.suite.estimate_collective(
                resolution.op, resolution.nbytes, group,
                self.cluster.gpus_per_node)
            self._collective_cache[key] = cached
        return cached


class GroundTruthDurationProvider:
    """Testbed provider: ground-truth costs plus per-invocation jitter.

    This is the stand-in for running the workload on physical GPUs.  The
    jitter term is keyed on (rank, event sequence number) so repeated
    simulations of the same configuration reproduce the same "measurement",
    while different kernels see independent run-to-run variation that no
    estimator can learn.
    """

    def __init__(self, cluster: ClusterSpec,
                 kernel_cost_model: Optional[KernelCostModel] = None,
                 collective_cost_model: Optional[CollectiveCostModel] = None,
                 run_jitter: float = 0.012) -> None:
        self.cluster = cluster
        self.kernel_cost_model = kernel_cost_model or KernelCostModel()
        self.collective_cost_model = collective_cost_model or CollectiveCostModel()
        self.run_jitter = run_jitter
        self._base_cache: Dict[Tuple, float] = {}

    def kernel_duration(self, rank: int, event: TraceEvent) -> float:
        key = (event.kernel_class, event.signature())
        base = self._base_cache.get(key)
        if base is None:
            base = self.kernel_cost_model.kernel_time(
                self.cluster.gpu, event.kernel_class or "elementwise",
                event.params, invocation=None)
            self._base_cache[key] = base
        jitter = fast_noise(rank * 1_000_003 + event.seq, scale=self.run_jitter)
        return base * jitter

    def collective_duration(self, rank: int, event: TraceEvent,
                            resolution: CollectiveResolution,
                            group: Sequence[int]) -> float:
        interconnect = self.cluster.interconnect
        bandwidth = interconnect.effective_bus_bandwidth(
            group, self.cluster.gpus_per_node)
        latency = interconnect.base_latency(group, self.cluster.gpus_per_node)
        base = self.collective_cost_model.collective_time(
            op=resolution.op, nbytes=resolution.nbytes, ranks=len(group),
            bus_bandwidth=bandwidth, latency=latency, invocation=None)
        # stable_hash, not hash(): builtin string hashing is randomised per
        # process and would make "measurements" irreproducible across runs.
        jitter = fast_noise(stable_hash("coll", min(group, default=0),
                                        event.seq),
                            scale=self.run_jitter)
        return base * jitter
