"""Trace event model.

Maya's emulator produces one trace per worker; each trace is an ordered list
of :class:`TraceEvent` objects covering device kernels, memory operations,
synchronisation primitives, collectives and the host delays measured between
consecutive API calls (Section 4.2 of the paper).

Traces are plain data: they can be serialised to / from JSON so that
emulation and simulation can run in separate processes, mirroring the
"Worker Traces" artifact in Figure 5 (the evaluation backends ship cached
emulation artifacts between processes through exactly this round-trip).

``HOST_DELAY`` events come in two schema generations:

* **structured** (current): ``duration`` holds the *deterministic* base
  dispatch cost and ``params`` carries ``call_class`` plus the per-worker
  call sequence number ``seq``; the per-call jitter factor is synthesised at
  simulation time from the host-model profile stored under
  ``WorkerTrace.metadata["host_model"]``;
* **legacy** (pre-split): no ``seq`` entry -- ``duration`` was recorded with
  the jitter already baked in and replays by value.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.hardware.noise import stable_hash


class TraceEventKind(str, enum.Enum):
    """Classification of trace events used by the collator and simulator."""

    KERNEL = "kernel"
    MEMCPY = "memcpy"
    MEMSET = "memset"
    COLLECTIVE = "collective"
    HOST_DELAY = "host_delay"
    EVENT_RECORD = "event_record"
    STREAM_WAIT_EVENT = "stream_wait_event"
    EVENT_SYNCHRONIZE = "event_synchronize"
    STREAM_SYNCHRONIZE = "stream_synchronize"
    DEVICE_SYNCHRONIZE = "device_synchronize"
    MARKER = "marker"


#: Event kinds that occupy a device stream and need a predicted duration.
DEVICE_WORK_KINDS = (
    TraceEventKind.KERNEL,
    TraceEventKind.MEMCPY,
    TraceEventKind.MEMSET,
    TraceEventKind.COLLECTIVE,
)


@dataclass
class TraceEvent:
    """One entry in a worker trace."""

    kind: TraceEventKind
    api: str
    device: int
    stream: Optional[int] = None
    kernel_class: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    collective: Optional[Dict[str, Any]] = None
    event: Optional[int] = None
    wait_event: Optional[int] = None
    #: Host-measured or estimator-predicted duration in seconds.
    duration: Optional[float] = None
    #: Monotonic per-worker sequence number assigned by the emulator.
    seq: int = 0

    def is_device_work(self) -> bool:
        """Whether this event consumes time on a device stream."""
        return self.kind in DEVICE_WORK_KINDS

    def signature(self) -> Tuple:
        """Shape signature used for worker deduplication and estimator keys.

        Deliberately excludes measured durations and sequence numbers so
        workers doing identical work hash identically.  Events are immutable
        once emitted and the signature is consulted several times per event
        (dedup, estimator warm-up, simulation), so it is memoized.
        """
        cached = getattr(self, "_signature_cache", None)
        if cached is not None:
            return cached
        params_key = tuple(
            sorted((k, v) for k, v in self.params.items()
                   if k not in ("free", "total"))
        )
        collective_key: Tuple = ()
        if self.collective is not None:
            collective_key = (
                self.collective.get("op"),
                self.collective.get("nranks"),
                self.collective.get("comm_tag"),
            )
        signature = (self.kind.value, self.api, self.kernel_class, self.stream,
                     params_key, collective_key)
        self._signature_cache = signature
        return signature

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["kind"] = self.kind.value
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "TraceEvent":
        payload = dict(data)
        payload["kind"] = TraceEventKind(payload["kind"])
        return TraceEvent(**payload)


@dataclass
class WorkerTrace:
    """All events captured from one emulated worker (rank)."""

    rank: int
    device: int
    events: List[TraceEvent] = field(default_factory=list)
    #: Peak device memory observed during emulation, in bytes.
    peak_memory_bytes: int = 0
    #: Whether the worker hit an out-of-memory condition during emulation.
    oom: bool = False
    metadata: Dict[str, Any] = field(default_factory=dict)

    def append(self, event: TraceEvent) -> None:
        event.seq = len(self.events)
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def device_events(self) -> List[TraceEvent]:
        """Events that occupy a device stream."""
        return [event for event in self.events if event.is_device_work()]

    def host_delay_total(self) -> float:
        """Total host-side delay the simulator will replay, in seconds.

        Structured ``HOST_DELAY`` events store only the deterministic base
        cost; this total applies the same per-call jitter materialization
        the simulation engine uses, so it matches the replayed host time.
        Legacy (pre-jittered) events contribute their recorded value.
        """
        from repro.hardware.host_model import host_delay_materializer

        materialize = host_delay_materializer(self.metadata)
        return sum(
            materialize(event)
            for event in self.events
            if event.kind is TraceEventKind.HOST_DELAY
        )

    def host_delay_signature(self) -> int:
        """Content hash of the replayed host-delay stream (memoized).

        Rolling signatures deliberately skip ``HOST_DELAY`` events (worker
        deduplication compares device work), but simulation replay does
        not: two traces with identical operation streams and different
        host delays replay differently.  Consumers that promise
        "same signature => same replay" (the collated-trace content
        signature, and through it the provider annotation memo) combine
        this hash with the rolling signature.  It covers exactly what
        materialization consumes: recorded durations, structured jitter
        keys and the recorded host-model profile.
        """
        cached = getattr(self, "_host_delay_sig_cache", None)
        if cached is not None and cached[0] == len(self.events):
            return cached[1]
        profile = self.metadata.get("host_model") or {}
        signature = stable_hash("host-delays", profile.get("name"),
                                profile.get("jitter"))
        for event in self.events:
            if event.kind is TraceEventKind.HOST_DELAY:
                signature = stable_hash(signature, event.seq,
                                        event.duration or 0.0,
                                        event.params.get("seq"),
                                        event.params.get("call_class"))
        self._host_delay_sig_cache = (len(self.events), signature)
        return signature

    def rolling_signature(self) -> int:
        """Rolling hash of the operation stream (worker deduplication).

        The paper computes rolling hashes of operation sequences during the
        first iteration to detect workers performing redundant computation;
        this is the per-worker end state of that hash.
        """
        cached = getattr(self, "_rolling_cache", None)
        if cached is not None and cached[0] == len(self.events):
            return cached[1]
        signature = 0
        for event in self.events:
            if event.kind is TraceEventKind.HOST_DELAY:
                continue
            signature = stable_hash(signature, event.signature())
        self._rolling_cache = (len(self.events), signature)
        return signature

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank,
            "device": self.device,
            "peak_memory_bytes": self.peak_memory_bytes,
            "oom": self.oom,
            "metadata": self.metadata,
            "events": [event.to_dict() for event in self.events],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "WorkerTrace":
        trace = WorkerTrace(
            rank=data["rank"],
            device=data["device"],
            peak_memory_bytes=data.get("peak_memory_bytes", 0),
            oom=data.get("oom", False),
            metadata=dict(data.get("metadata", {})),
        )
        trace.events = [TraceEvent.from_dict(item) for item in data["events"]]
        return trace

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @staticmethod
    def from_json(payload: str) -> "WorkerTrace":
        return WorkerTrace.from_dict(json.loads(payload))


@dataclass
class JobTrace:
    """The set of worker traces captured for one training job."""

    world_size: int
    workers: Dict[int, WorkerTrace] = field(default_factory=dict)
    #: Ranks that were actually emulated (others deduplicated onto these).
    emulated_ranks: List[int] = field(default_factory=list)
    #: Map from every rank to the emulated rank whose trace represents it.
    representative: Dict[int, int] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_worker(self, trace: WorkerTrace) -> None:
        self.workers[trace.rank] = trace
        if trace.rank not in self.emulated_ranks:
            self.emulated_ranks.append(trace.rank)
        self.representative.setdefault(trace.rank, trace.rank)

    def trace_for(self, rank: int) -> WorkerTrace:
        """Return the (possibly representative) trace for ``rank``."""
        rep = self.representative.get(rank, rank)
        return self.workers[rep]

    def any_oom(self) -> bool:
        return any(trace.oom for trace in self.workers.values())

    def peak_memory_bytes(self) -> int:
        if not self.workers:
            return 0
        return max(trace.peak_memory_bytes for trace in self.workers.values())

    def total_events(self) -> int:
        return sum(len(trace) for trace in self.workers.values())

    def ranks(self) -> Iterable[int]:
        return range(self.world_size)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "world_size": self.world_size,
            "emulated_ranks": list(self.emulated_ranks),
            "representative": {str(k): v for k, v in self.representative.items()},
            "metadata": self.metadata,
            "workers": {str(rank): trace.to_dict()
                        for rank, trace in self.workers.items()},
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "JobTrace":
        job = JobTrace(world_size=data["world_size"],
                       metadata=dict(data.get("metadata", {})))
        job.emulated_ranks = list(data.get("emulated_ranks", []))
        job.representative = {int(k): v
                              for k, v in data.get("representative", {}).items()}
        for rank, trace in data.get("workers", {}).items():
            job.workers[int(rank)] = WorkerTrace.from_dict(trace)
        return job

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @staticmethod
    def from_json(payload: str) -> "JobTrace":
        return JobTrace.from_dict(json.loads(payload))
