"""Maya core: transparent device emulation, trace processing and simulation.

The sub-modules follow the four stages of Figure 5 in the paper:

1. :mod:`repro.core.emulator` -- the Maya virtual runtime that intercepts
   device API calls from unmodified training code and records worker traces,
2. :mod:`repro.core.collator` -- trace collation, collective matching and
   worker deduplication,
3. :mod:`repro.core.estimators` -- pluggable kernel runtime estimators,
4. :mod:`repro.core.simulator` -- the event-driven cluster simulator.

:class:`repro.core.pipeline.MayaPipeline` wires the stages together and is
the main entry point used by examples, Maya-Search and the benchmarks.
"""

from repro.core.trace import JobTrace, TraceEvent, TraceEventKind, WorkerTrace
from repro.core.emulator import DeviceEmulator, EmulationSession
from repro.core.collator import TraceCollator, CollatedTrace
from repro.core.pipeline import MayaPipeline, PredictionResult

__all__ = [
    "JobTrace",
    "TraceEvent",
    "TraceEventKind",
    "WorkerTrace",
    "DeviceEmulator",
    "EmulationSession",
    "TraceCollator",
    "CollatedTrace",
    "MayaPipeline",
    "PredictionResult",
]
