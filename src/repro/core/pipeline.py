"""End-to-end Maya pipeline.

Glues the four stages of Figure 5 together:

1. **Emulation** -- run the unmodified training job against per-rank virtual
   devices, capturing worker traces (with selective launch of unique ranks,
   Section 7.4).
2. **Collation** -- deduplicate workers and match collectives.
3. **Runtime estimation** -- annotate operations using the estimator suite.
4. **Simulation** -- replay through the discrete-event cluster simulator.

The per-stage wall-clock times are recorded because they are themselves an
evaluation target (Figure 13 / Table 6).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.core.collator import CollatedTrace, TraceCollator
from repro.core.emulator import EmulationSession
from repro.core.estimators.suite import EstimatorSuite, build_estimator_suite
from repro.core.simulator.engine import (
    ClusterSimulator,
    SimulationConfig,
    SimulationError,
)
from repro.core.simulator.providers import (
    DurationProvider,
    EstimatedDurationProvider,
)
from repro.core.simulator.report import SimulationReport
from repro.core.trace import JobTrace
from repro.hardware.cluster import ClusterSpec

if TYPE_CHECKING:  # pragma: no cover - import used for type checking only
    from repro.workloads.job import TrainingJob


@dataclass
class EmulationArtifacts:
    """Everything produced by the emulation + collation stages for one job."""

    job: TrainingJob
    cluster: ClusterSpec
    job_trace: JobTrace
    collated: CollatedTrace
    oom: bool
    stage_times: Dict[str, float] = field(default_factory=dict)


@dataclass
class PredictionResult:
    """Outcome of a Maya prediction (or a testbed measurement)."""

    job_name: str
    iteration_time: float
    total_time: float
    communication_time: float
    peak_memory_bytes: int
    oom: bool
    stage_times: Dict[str, float] = field(default_factory=dict)
    report: Optional[SimulationReport] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return not self.oom and math.isfinite(self.iteration_time)

    @property
    def peak_memory_gb(self) -> float:
        return self.peak_memory_bytes / (1024 ** 3)


def _iteration_time_from_report(report: SimulationReport,
                                iterations: int) -> float:
    """Iteration time measured between the iteration markers when present."""
    start_markers = report.markers.get("iteration-0-start")
    end_markers = report.markers.get(f"iteration-{iterations - 1}-end")
    if start_markers and end_markers:
        start = max(start_markers.values())
        end = max(end_markers.values())
        if end > start:
            return (end - start) / iterations
    return report.total_time / max(iterations, 1)


def simulate_collated_trace(
    collated: CollatedTrace,
    cluster: ClusterSpec,
    provider: DurationProvider,
    simulate_ranks: Optional[Sequence[int]] = None,
    sm_contention_factor: float = 1.0,
    iterations: int = 1,
) -> SimulationReport:
    """Shared simulation entry point used by Maya and the testbed."""
    config = SimulationConfig(
        simulate_ranks=simulate_ranks,
        sm_contention_factor=sm_contention_factor,
    )
    simulator = ClusterSimulator(cluster, provider, config)
    return simulator.simulate(collated, iterations=iterations)


class MayaPipeline:
    """Maya's prediction pipeline for one target cluster."""

    def __init__(
        self,
        cluster: ClusterSpec,
        estimator_mode: str = "learned",
        estimator_suite: Optional[EstimatorSuite] = None,
        deduplicate_workers: bool = True,
        selective_launch: bool = True,
        reduce_replicas: bool = True,
        iterations: int = 1,
    ) -> None:
        self.cluster = cluster
        self.estimator_mode = estimator_mode
        self._suite = estimator_suite
        self.deduplicate_workers = deduplicate_workers
        self.selective_launch = selective_launch
        self.reduce_replicas = reduce_replicas
        self.iterations = iterations

    # ------------------------------------------------------------------
    # estimator suite
    # ------------------------------------------------------------------
    @property
    def suite(self) -> EstimatorSuite:
        if self._suite is None:
            self._suite = build_estimator_suite(self.cluster,
                                                mode=self.estimator_mode)
        return self._suite

    def make_provider(self) -> EstimatedDurationProvider:
        """Fresh duration provider over this pipeline's estimator suite.

        The prediction service keeps one of these per cluster so the
        per-shape kernel memo persists across trials instead of being
        re-warmed inside every :meth:`predict` call.
        """
        return EstimatedDurationProvider(self.suite, self.cluster)

    # ------------------------------------------------------------------
    # cache fingerprints
    # ------------------------------------------------------------------
    def collation_fingerprint(self) -> Tuple:
        """Identity of everything (besides the job) that shapes artifacts."""
        return (
            self.cluster.name,
            self.cluster.world_size,
            self.cluster.gpu.name,
            self.cluster.gpu.memory_gb,
            self.cluster.gpus_per_node,
            self.deduplicate_workers,
            self.selective_launch,
        )

    def estimator_fingerprint(self) -> Tuple:
        """Identity of the estimation + simulation configuration."""
        suite_name = (self._suite.name if self._suite is not None
                      else self.estimator_mode)
        return (suite_name, self.reduce_replicas, self.iterations)

    # ------------------------------------------------------------------
    # stage 1 + 2: emulation and collation
    # ------------------------------------------------------------------
    def emulate(self, job: TrainingJob) -> EmulationArtifacts:
        """Run transparent emulation (and collation) for ``job``."""
        stage_times: Dict[str, float] = {}
        session = EmulationSession(self.cluster)

        ranks = None
        if self.selective_launch:
            try:
                ranks = job.unique_ranks()
            except Exception:
                ranks = None

        start = time.perf_counter()
        emulation = session.run(job.worker_fn, ranks=ranks,
                                world_size=job.world_size)
        stage_times["emulation"] = time.perf_counter() - start

        start = time.perf_counter()
        collator = TraceCollator(deduplicate=self.deduplicate_workers)
        topology = job.topology() if hasattr(job, "topology") else None
        collated = collator.collate(emulation.job_trace, topology=topology)
        stage_times["collation"] = time.perf_counter() - start

        return EmulationArtifacts(
            job=job,
            cluster=self.cluster,
            job_trace=emulation.job_trace,
            collated=collated,
            oom=emulation.oom,
            stage_times=stage_times,
        )

    # ------------------------------------------------------------------
    # stage 3 + 4: estimation and simulation
    # ------------------------------------------------------------------
    def predict(self, job: TrainingJob,
                artifacts: Optional[EmulationArtifacts] = None,
                provider: Optional[EstimatedDurationProvider] = None
                ) -> PredictionResult:
        """Predict the runtime of ``job`` on this pipeline's cluster.

        ``artifacts`` may come from a previous :meth:`emulate` of a
        structurally identical job (the service layer's artifact cache);
        ``provider`` may be a shared duration provider whose kernel memo
        persists across trials.
        """
        problems = job.validate()
        if problems:
            return PredictionResult(
                job_name=job.name, iteration_time=math.inf, total_time=math.inf,
                communication_time=0.0, peak_memory_bytes=0, oom=False,
                metadata={"invalid": problems},
            )
        if artifacts is None:
            artifacts = self.emulate(job)
        stage_times = dict(artifacts.stage_times)

        if artifacts.oom:
            return PredictionResult(
                job_name=job.name, iteration_time=math.inf, total_time=math.inf,
                communication_time=0.0,
                peak_memory_bytes=artifacts.collated.peak_memory_bytes(),
                oom=True, stage_times=stage_times,
                metadata={"reason": "out of memory during emulation"},
            )

        start = time.perf_counter()
        if provider is None:
            # may train estimators on first use (cached per cluster)
            provider = self.make_provider()
        # Warm the per-shape caches so the "prediction" stage time reflects
        # estimator work rather than lazily leaking into simulation.  With a
        # shared provider the memo survives across trials and this loop
        # degenerates to cache lookups.
        for trace in artifacts.collated.traces.values():
            for event in trace.device_events():
                if event.kernel_class and not event.collective:
                    provider.kernel_duration(trace.rank, event)
        stage_times["prediction"] = time.perf_counter() - start

        simulate_ranks = self._simulation_ranks(job)
        start = time.perf_counter()
        try:
            report = simulate_collated_trace(
                artifacts.collated, self.cluster, provider,
                simulate_ranks=simulate_ranks,
                iterations=job.iterations if hasattr(job, "iterations") else 1,
            )
        except SimulationError as exc:
            # Surface unschedulable traces (e.g. exotic pipeline schedules the
            # simplified schedule generator mis-orders) as failed trials
            # rather than crashing a whole sweep or search.
            stage_times["simulation"] = time.perf_counter() - start
            return PredictionResult(
                job_name=job.name, iteration_time=math.inf,
                total_time=math.inf, communication_time=0.0,
                peak_memory_bytes=artifacts.collated.peak_memory_bytes(),
                oom=False, stage_times=stage_times,
                metadata={"simulation_error": str(exc)},
            )
        stage_times["simulation"] = time.perf_counter() - start

        iterations = getattr(job, "iterations", 1)
        return PredictionResult(
            job_name=job.name,
            iteration_time=_iteration_time_from_report(report, iterations),
            total_time=report.total_time,
            communication_time=report.communication_time,
            peak_memory_bytes=report.peak_memory_bytes,
            oom=False,
            stage_times=stage_times,
            report=report,
            metadata={
                "estimator": self.suite.name,
                "simulated_ranks": report.metadata.get("simulated_ranks"),
                "unique_workers": artifacts.collated.unique_trace_count(),
            },
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _simulation_ranks(self, job: TrainingJob) -> Optional[Sequence[int]]:
        if not self.reduce_replicas:
            return None
        if not hasattr(job, "topology"):
            return None
        topology = job.topology()
        ranks = [
            topology.rank_of(0, pp, tp)
            for pp in range(topology.pipeline_parallel)
            for tp in range(topology.tensor_parallel)
        ]
        return ranks
