"""Trace collation and analysis.

The collator turns per-worker traces into a job-level view the simulator can
replay (Section 4.2 of the paper):

* **Worker deduplication** -- rolling hashes over each worker's operation
  stream identify ranks performing identical work; only one representative
  per signature needs to be kept (and, with *selective launch*, only the
  representatives need to be emulated at all).
* **Collective matching** -- collectives are matched across workers using
  communicator ids and per-communicator sequence numbers, reconstructing the
  communication pattern.  Point-to-point sends and receives are paired by
  (communicator, source position, destination position, message index).
* **Group remapping** -- when a rank's trace is borrowed from its
  representative, communicator groups recorded in that trace are remapped to
  the borrowing rank's own groups using the job's parallel topology, so that
  e.g. every data-parallel replica still performs its *own* all-reduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.trace import JobTrace, TraceEvent, TraceEventKind, WorkerTrace
from repro.framework.topology import ParallelTopology

#: Collective ops that are point-to-point rather than group-wide.
_P2P_OPS = ("send", "recv")


class GroupResolver:
    """Maps (rank, communicator tag) to that rank's communicator group."""

    def group_for(self, rank: int, tag: str,
                  representative_group: Sequence[int]) -> Tuple[int, ...]:
        raise NotImplementedError


class IdentityGroupResolver(GroupResolver):
    """Used when every rank was emulated: groups need no remapping."""

    def group_for(self, rank: int, tag: str,
                  representative_group: Sequence[int]) -> Tuple[int, ...]:
        return tuple(representative_group)


class TopologyGroupResolver(GroupResolver):
    """Resolves tp / pp / dp groups from a :class:`ParallelTopology`."""

    def __init__(self, topology: ParallelTopology) -> None:
        self.topology = topology

    def group_for(self, rank: int, tag: str,
                  representative_group: Sequence[int]) -> Tuple[int, ...]:
        if tag == "tp":
            return tuple(self.topology.tensor_parallel_group(rank))
        if tag == "pp":
            return tuple(self.topology.pipeline_parallel_group(rank))
        if tag == "dp":
            return tuple(self.topology.data_parallel_group(rank))
        return tuple(representative_group)


@dataclass(frozen=True)
class CollectiveResolution:
    """Representative-level description of one collective trace event."""

    op: str
    tag: str
    nranks: int
    nbytes: float
    seq_in_comm: int
    representative_group: Tuple[int, ...]
    #: Position of this rank within its communicator group.
    self_position: int
    #: For p2p ops: position of the peer within the group, else None.
    peer_position: Optional[int] = None
    #: For p2p ops: index of this message among messages between the same
    #: ordered (source, destination) pair on this communicator.
    pair_index: Optional[int] = None
    is_p2p: bool = False

    def key_for(self, rank: int, resolver: GroupResolver) -> Tuple:
        """Global matching key of this collective when replayed by ``rank``."""
        group = resolver.group_for(rank, self.tag, self.representative_group)
        if self.is_p2p:
            if self.op == "send":
                src, dst = self.self_position, self.peer_position
            else:
                src, dst = self.peer_position, self.self_position
            return ("p2p", self.tag, group, src, dst, self.pair_index)
        return ("coll", self.tag, group, self.op, self.seq_in_comm)


@dataclass
class CollatedTrace:
    """Job-level trace ready for runtime estimation and simulation."""

    world_size: int
    #: Representative worker traces keyed by the representative's rank.
    traces: Dict[int, WorkerTrace]
    #: Maps every rank to the representative whose trace it replays.
    representative: Dict[int, int]
    #: Per representative rank: event seq -> collective resolution.
    resolutions: Dict[int, Dict[int, CollectiveResolution]]
    group_resolver: GroupResolver
    #: Statistics gathered during collation (used by ablation benchmarks).
    stats: Dict[str, float] = field(default_factory=dict)

    def trace_for(self, rank: int) -> WorkerTrace:
        return self.traces[self.representative[rank]]

    def resolution_for(self, rank: int,
                       event: TraceEvent) -> Optional[CollectiveResolution]:
        rep = self.representative[rank]
        return self.resolutions.get(rep, {}).get(event.seq)

    def collective_key(self, rank: int, event: TraceEvent) -> Optional[Tuple]:
        resolution = self.resolution_for(rank, event)
        if resolution is None:
            return None
        return resolution.key_for(rank, self.group_resolver)

    def unique_trace_count(self) -> int:
        return len(self.traces)

    def content_signature(self) -> int:
        """Content address of the collated artifacts.

        Combines each representative's rolling operation-stream hash with
        the rank -> representative map, so two collated traces with the same
        signature replay identically in the simulator.  The prediction
        service uses this to content-address cached emulation artifacts.
        """
        from repro.hardware.noise import stable_hash

        signature = stable_hash(self.world_size)
        for rank in sorted(self.traces):
            signature = stable_hash(signature, rank,
                                    self.traces[rank].rolling_signature())
        for rank in sorted(self.representative):
            signature = stable_hash(signature, rank, self.representative[rank])
        return signature

    def peak_memory_bytes(self) -> int:
        if not self.traces:
            return 0
        return max(trace.peak_memory_bytes for trace in self.traces.values())

    def any_oom(self) -> bool:
        return any(trace.oom for trace in self.traces.values())


class TraceCollator:
    """Combines worker traces into a unified, simulator-ready job trace."""

    def __init__(self, deduplicate: bool = True,
                 group_resolver: Optional[GroupResolver] = None) -> None:
        self.deduplicate = deduplicate
        self.group_resolver = group_resolver or IdentityGroupResolver()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def collate(self, job: JobTrace,
                topology: Optional[ParallelTopology] = None) -> CollatedTrace:
        """Collate ``job`` into a :class:`CollatedTrace`.

        When ``topology`` is given it is used both to expand selectively
        launched ranks to the full world and to remap communicator groups.
        """
        resolver = self.group_resolver
        if topology is not None and isinstance(resolver, IdentityGroupResolver):
            resolver = TopologyGroupResolver(topology)

        representative = self._build_representative_map(job, topology)
        kept_reps = sorted(set(representative.values()))
        traces = {rank: job.workers[rank] for rank in kept_reps}
        resolutions = {rank: self._resolve_collectives(traces[rank])
                       for rank in kept_reps}

        stats = {
            "emulated_workers": float(len(job.workers)),
            "unique_workers": float(len(kept_reps)),
            "total_events": float(sum(len(t) for t in traces.values())),
            "dedup_savings": 1.0 - len(kept_reps) / max(job.world_size, 1),
        }
        return CollatedTrace(
            world_size=job.world_size,
            traces=traces,
            representative=representative,
            resolutions=resolutions,
            group_resolver=resolver,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # deduplication / selective-launch expansion
    # ------------------------------------------------------------------
    def _build_representative_map(
        self, job: JobTrace, topology: Optional[ParallelTopology]
    ) -> Dict[int, int]:
        emulated = sorted(job.workers)
        representative: Dict[int, int] = {}

        if self.deduplicate:
            by_signature: Dict[int, int] = {}
            for rank in emulated:
                signature = job.workers[rank].rolling_signature()
                by_signature.setdefault(signature, rank)
                representative[rank] = by_signature[signature]
        else:
            for rank in emulated:
                representative[rank] = rank

        # Ranks that were never emulated (selective launch) borrow the trace
        # of their topological representative.
        missing = [rank for rank in range(job.world_size)
                   if rank not in representative]
        if missing:
            if topology is None:
                raise ValueError(
                    "job trace is missing ranks "
                    f"{missing[:8]}{'...' if len(missing) > 8 else ''} and no "
                    "topology was provided to expand selectively-launched runs"
                )
            fallback = emulated[0] if emulated else None
            for rank in missing:
                rep = topology.representative_of(rank)
                if rep not in representative:
                    if job.any_oom() and fallback is not None:
                        # Emulation aborted early on an out-of-memory rank;
                        # the remaining ranks only need a stand-in trace so
                        # the OOM verdict can be reported.
                        representative[rank] = representative[fallback]
                        continue
                    raise ValueError(
                        f"representative rank {rep} for rank {rank} was not "
                        "emulated"
                    )
                representative[rank] = representative[rep]
        return representative

    # ------------------------------------------------------------------
    # collective resolution
    # ------------------------------------------------------------------
    def _resolve_collectives(
        self, trace: WorkerTrace
    ) -> Dict[int, CollectiveResolution]:
        resolutions: Dict[int, CollectiveResolution] = {}
        #: (comm_id, src_pos, dst_pos) -> number of messages seen so far.
        pair_counters: Dict[Tuple, int] = {}

        for event in trace.events:
            if event.kind is not TraceEventKind.COLLECTIVE:
                continue
            info = event.collective or {}
            op = str(info.get("op", "all_reduce"))
            group = tuple(info.get("ranks", ()))
            tag = str(info.get("comm_tag", "")) or "default"
            rank = int(info.get("rank", trace.rank))
            nranks = int(info.get("nranks", max(len(group), 1)))
            nbytes = float(event.params.get("bytes", 0.0))
            seq_in_comm = int(info.get("seq", event.seq))
            self_position = group.index(rank) if rank in group else 0

            peer_position = None
            pair_index = None
            is_p2p = op in _P2P_OPS
            if is_p2p:
                peer = int(info.get("peer", rank))
                peer_position = group.index(peer) if peer in group else 0
                if op == "send":
                    pair_key = (info.get("comm_id"), self_position, peer_position)
                else:
                    pair_key = (info.get("comm_id"), peer_position, self_position)
                pair_index = pair_counters.get(pair_key, 0)
                pair_counters[pair_key] = pair_index + 1

            resolutions[event.seq] = CollectiveResolution(
                op=op,
                tag=tag,
                nranks=nranks,
                nbytes=nbytes,
                seq_in_comm=seq_in_comm,
                representative_group=group,
                self_position=self_position,
                peer_position=peer_position,
                pair_index=pair_index,
                is_p2p=is_p2p,
            )
        return resolutions
