"""Trace collation and analysis.

The collator turns per-worker traces into a job-level view the simulator can
replay (Section 4.2 of the paper):

* **Worker deduplication** -- rolling hashes over each worker's operation
  stream identify ranks performing identical work; only one representative
  per signature needs to be kept (and, with *selective launch*, only the
  representatives need to be emulated at all).
* **Collective matching** -- collectives are matched across workers using
  communicator ids and per-communicator sequence numbers, reconstructing the
  communication pattern.  Point-to-point sends and receives are paired by
  (communicator, source position, destination position, message index).
* **Group remapping** -- when a rank's trace is borrowed from its
  representative, communicator groups recorded in that trace are remapped to
  the borrowing rank's own groups using the job's parallel topology, so that
  e.g. every data-parallel replica still performs its *own* all-reduce.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.trace import JobTrace, TraceEvent, TraceEventKind, WorkerTrace
from repro.framework.topology import ParallelTopology
from repro.hardware.noise import stable_hash

#: Collective ops that are point-to-point rather than group-wide.
_P2P_OPS = ("send", "recv")

#: Labels the emulator emits around every training iteration.
_ITERATION_MARKER = re.compile(r"^iteration-(\d+)-(start|end)$")


@dataclass(frozen=True)
class IterationWindows:
    """Positions of the per-iteration marker events within one trace.

    ``starts[k]`` / ``ends[k]`` are the event indices of the
    ``iteration-k-start`` / ``iteration-k-end`` markers.  Window ``k``'s
    *body* spans ``[starts[k], ends[k]]`` (inclusive); the *glue* between
    windows ``k`` and ``k + 1`` spans ``(ends[k], starts[k + 1])``.
    """

    count: int
    starts: Tuple[int, ...]
    ends: Tuple[int, ...]

    def body_range(self, k: int) -> Tuple[int, int]:
        """Half-open event-index range of window ``k``'s body."""
        return self.starts[k], self.ends[k] + 1

    def glue_range(self, k: int) -> Tuple[int, int]:
        """Half-open range of the inter-iteration events after window ``k``."""
        return self.ends[k] + 1, self.starts[k + 1]

    @property
    def tail_index(self) -> int:
        """Index of the first event after the last iteration window."""
        return self.ends[-1] + 1


def find_iteration_windows(trace: WorkerTrace) -> Optional[IterationWindows]:
    """Locate the iteration marker pairs of ``trace``, if well formed.

    Returns ``None`` unless the trace contains ``iteration-k-start`` /
    ``iteration-k-end`` markers for exactly ``k = 0 .. N-1``, in order and
    properly interleaved.
    """
    starts: List[int] = []
    ends: List[int] = []
    for index, event in enumerate(trace.events):
        if event.kind is not TraceEventKind.MARKER:
            continue
        match = _ITERATION_MARKER.match(str(event.params.get("label", "")))
        if match is None:
            continue
        target = starts if match.group(2) == "start" else ends
        if int(match.group(1)) != len(target):
            return None  # duplicate or out-of-order iteration markers
        target.append(index)
    count = len(starts)
    if count == 0 or len(ends) != count:
        return None
    for k in range(count):
        if not starts[k] < ends[k]:
            return None
        if k + 1 < count and not ends[k] < starts[k + 1]:
            return None
    return IterationWindows(count=count, starts=tuple(starts),
                            ends=tuple(ends))


def _canonical_range_fingerprint(trace: WorkerTrace, lo: int,
                                 hi: int) -> Optional[int]:
    """Content hash of ``trace.events[lo:hi]`` for cross-window comparison.

    CUDA event handle ids and record versions grow monotonically across
    iterations, so the raw event signatures of two otherwise identical
    iteration windows never match.  This fingerprint canonicalises them:
    records are numbered serially within the range and waits hash to the
    serial number of the record they reference.  A wait that references a
    record *outside* the range (a cross-window dependency) makes the range
    non-periodic and yields ``None``.  Structured host delays (deterministic
    base cost + replay-time jitter) hash by call class and base cost, which
    repeat exactly in every steady-state window -- the per-window jitter
    variation is synthesised at simulation time and handled analytically by
    fold extrapolation.  Legacy pre-jittered host delays hash by value: such
    a window is only equivalent to another if it replays the same cost.

    When the trace's columnar view is available the hash runs over the
    columns and per-template digests instead of re-walking event objects
    (an order of magnitude cheaper on template-heavy traces).  The two
    paths produce *different values* but identical equality semantics, and
    fingerprints are only ever compared within one trace -- where the
    memoized columnar view either always exists or never does.
    """
    from repro.core.columnar import columnar_worker_trace, range_fingerprint

    cols = columnar_worker_trace(trace)
    if cols is not None:
        return range_fingerprint(cols, lo, hi, _ITERATION_MARKER)
    return _range_fingerprint_objects(trace, lo, hi)


def _range_fingerprint_objects(trace: WorkerTrace, lo: int,
                               hi: int) -> Optional[int]:
    """Per-object fingerprint walk (numpy-less fallback and test reference)."""
    signature = stable_hash("window")
    local_records: Dict[Tuple[int, int], int] = {}
    serial = 0
    for event in trace.events[lo:hi]:
        kind = event.kind
        if kind is TraceEventKind.HOST_DELAY:
            if "seq" in event.params:
                signature = stable_hash(
                    signature, "delay",
                    str(event.params.get("call_class", "")),
                    event.duration or 0.0)
            else:
                signature = stable_hash(signature, "delay",
                                        event.duration or 0.0)
            continue
        if kind is TraceEventKind.MARKER:
            # Iteration markers embed the window index, so only their
            # position is hashed; any other label must recur verbatim in
            # every window (a window-unique label would be dropped or
            # mis-timed by fold extrapolation, so it blocks periodicity).
            label = str(event.params.get("label", ""))
            if _ITERATION_MARKER.match(label):
                signature = stable_hash(signature, "iteration-marker")
            else:
                signature = stable_hash(signature, "marker", label)
            continue
        if kind is TraceEventKind.EVENT_RECORD:
            if event.params.get("create"):
                signature = stable_hash(signature, "event-create")
                continue
            if event.params.get("destroy"):
                signature = stable_hash(signature, "event-destroy")
                continue
            key = (event.event or 0, int(event.params.get("version", 0)))
            local_records[key] = serial
            signature = stable_hash(signature, "record", serial, event.stream)
            serial += 1
            continue
        if kind in (TraceEventKind.STREAM_WAIT_EVENT,
                    TraceEventKind.EVENT_SYNCHRONIZE):
            version = int(event.params.get("version", 0))
            if version == 0:
                # Waiting on a never-recorded event is a no-op.
                signature = stable_hash(signature, "noop-wait", kind.value,
                                        event.stream)
                continue
            reference = local_records.get((event.wait_event or 0, version))
            if reference is None:
                return None  # waits on an event recorded in another window
            signature = stable_hash(signature, kind.value, reference,
                                    event.stream)
            continue
        if kind is TraceEventKind.COLLECTIVE:
            info = event.collective or {}
            signature = stable_hash(
                signature, "collective", event.stream, str(info.get("op")),
                str(info.get("comm_tag")), tuple(info.get("ranks", ())),
                int(info.get("peer", -1)), float(event.params.get("bytes", 0.0)))
            continue
        # Kernels, copies, memsets, synchronisation calls: the memoized
        # shape signature already excludes durations and sequence numbers.
        signature = stable_hash(signature, event.signature())
    return signature


def windows_are_periodic(trace: WorkerTrace,
                         windows: IterationWindows) -> bool:
    """Whether iterations ``1 .. N-1`` of ``trace`` are interchangeable.

    Window 0 is allowed to differ (allocation warm-up); every later window
    body must canonically match window 1's, every inter-iteration glue must
    match the window-1 -> window-2 glue, and no window may synchronise on
    events recorded outside itself.
    """
    if windows.count < 3:
        return False
    reference_body = _canonical_range_fingerprint(
        trace, *windows.body_range(1))
    if reference_body is None:
        return False
    for k in range(2, windows.count):
        body = _canonical_range_fingerprint(trace, *windows.body_range(k))
        if body is None or body != reference_body:
            return False
    reference_glue = _canonical_range_fingerprint(
        trace, *windows.glue_range(1))
    if reference_glue is None:
        return False
    for k in range(2, windows.count - 1):
        glue = _canonical_range_fingerprint(trace, *windows.glue_range(k))
        if glue is None or glue != reference_glue:
            return False
    return True


class GroupResolver:
    """Maps (rank, communicator tag) to that rank's communicator group."""

    def group_for(self, rank: int, tag: str,
                  representative_group: Sequence[int]) -> Tuple[int, ...]:
        raise NotImplementedError


class IdentityGroupResolver(GroupResolver):
    """Used when every rank was emulated: groups need no remapping."""

    def group_for(self, rank: int, tag: str,
                  representative_group: Sequence[int]) -> Tuple[int, ...]:
        return tuple(representative_group)


class TopologyGroupResolver(GroupResolver):
    """Resolves tp / pp / dp groups from a :class:`ParallelTopology`."""

    def __init__(self, topology: ParallelTopology) -> None:
        self.topology = topology

    def group_for(self, rank: int, tag: str,
                  representative_group: Sequence[int]) -> Tuple[int, ...]:
        if tag == "tp":
            return tuple(self.topology.tensor_parallel_group(rank))
        if tag == "pp":
            return tuple(self.topology.pipeline_parallel_group(rank))
        if tag == "dp":
            return tuple(self.topology.data_parallel_group(rank))
        return tuple(representative_group)


@dataclass(frozen=True)
class CollectiveResolution:
    """Representative-level description of one collective trace event."""

    op: str
    tag: str
    nranks: int
    nbytes: float
    seq_in_comm: int
    representative_group: Tuple[int, ...]
    #: Position of this rank within its communicator group.
    self_position: int
    #: For p2p ops: position of the peer within the group, else None.
    peer_position: Optional[int] = None
    #: For p2p ops: index of this message among messages between the same
    #: ordered (source, destination) pair on this communicator.
    pair_index: Optional[int] = None
    is_p2p: bool = False

    def key_for(self, rank: int, resolver: GroupResolver) -> Tuple:
        """Global matching key of this collective when replayed by ``rank``."""
        group = resolver.group_for(rank, self.tag, self.representative_group)
        if self.is_p2p:
            if self.op == "send":
                src, dst = self.self_position, self.peer_position
            else:
                src, dst = self.peer_position, self.self_position
            return ("p2p", self.tag, group, src, dst, self.pair_index)
        return ("coll", self.tag, group, self.op, self.seq_in_comm)


@dataclass
class CollatedTrace:
    """Job-level trace ready for runtime estimation and simulation."""

    world_size: int
    #: Representative worker traces keyed by the representative's rank.
    traces: Dict[int, WorkerTrace]
    #: Maps every rank to the representative whose trace it replays.
    representative: Dict[int, int]
    #: Per representative rank: event seq -> collective resolution.
    resolutions: Dict[int, Dict[int, CollectiveResolution]]
    group_resolver: GroupResolver
    #: Statistics gathered during collation (used by ablation benchmarks).
    stats: Dict[str, float] = field(default_factory=dict)

    def trace_for(self, rank: int) -> WorkerTrace:
        return self.traces[self.representative[rank]]

    def resolution_for(self, rank: int,
                       event: TraceEvent) -> Optional[CollectiveResolution]:
        rep = self.representative[rank]
        return self.resolutions.get(rep, {}).get(event.seq)

    def collective_key(self, rank: int, event: TraceEvent) -> Optional[Tuple]:
        resolution = self.resolution_for(rank, event)
        if resolution is None:
            return None
        return resolution.key_for(rank, self.group_resolver)

    def unique_trace_count(self) -> int:
        return len(self.traces)

    def content_signature(self) -> int:
        """Content address of the collated artifacts.

        Combines each representative's rolling operation-stream hash and
        host-delay stream hash with the rank -> representative map, so two
        collated traces with the same signature replay identically in the
        simulator (the rolling hash alone skips host delays, which *do*
        shape replay -- and, since the host-delay split, feed the provider
        annotation memo keyed by this signature).  The prediction service
        uses this to content-address cached emulation artifacts.
        """
        from repro.hardware.noise import stable_hash

        signature = stable_hash(self.world_size)
        for rank in sorted(self.traces):
            trace = self.traces[rank]
            signature = stable_hash(signature, rank,
                                    trace.rolling_signature(),
                                    trace.host_delay_signature())
        for rank in sorted(self.representative):
            signature = stable_hash(signature, rank, self.representative[rank])
        return signature

    def peak_memory_bytes(self) -> int:
        if not self.traces:
            return 0
        return max(trace.peak_memory_bytes for trace in self.traces.values())

    def any_oom(self) -> bool:
        return any(trace.oom for trace in self.traces.values())


class TraceCollator:
    """Combines worker traces into a unified, simulator-ready job trace."""

    def __init__(self, deduplicate: bool = True,
                 group_resolver: Optional[GroupResolver] = None) -> None:
        self.deduplicate = deduplicate
        self.group_resolver = group_resolver or IdentityGroupResolver()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def collate(self, job: JobTrace,
                topology: Optional[ParallelTopology] = None) -> CollatedTrace:
        """Collate ``job`` into a :class:`CollatedTrace`.

        When ``topology`` is given it is used both to expand selectively
        launched ranks to the full world and to remap communicator groups.
        """
        resolver = self.group_resolver
        if topology is not None and isinstance(resolver, IdentityGroupResolver):
            resolver = TopologyGroupResolver(topology)

        representative = self._build_representative_map(job, topology)
        kept_reps = sorted(set(representative.values()))
        traces = {rank: job.workers[rank] for rank in kept_reps}
        resolutions = {rank: self._resolve_collectives(traces[rank])
                       for rank in kept_reps}

        stats = {
            "emulated_workers": float(len(job.workers)),
            "unique_workers": float(len(kept_reps)),
            "total_events": float(sum(len(t) for t in traces.values())),
            "dedup_savings": 1.0 - len(kept_reps) / max(job.world_size, 1),
        }
        return CollatedTrace(
            world_size=job.world_size,
            traces=traces,
            representative=representative,
            resolutions=resolutions,
            group_resolver=resolver,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # deduplication / selective-launch expansion
    # ------------------------------------------------------------------
    def _build_representative_map(
        self, job: JobTrace, topology: Optional[ParallelTopology]
    ) -> Dict[int, int]:
        emulated = sorted(job.workers)
        representative: Dict[int, int] = {}

        if self.deduplicate:
            by_signature: Dict[int, int] = {}
            for rank in emulated:
                signature = job.workers[rank].rolling_signature()
                by_signature.setdefault(signature, rank)
                representative[rank] = by_signature[signature]
        else:
            for rank in emulated:
                representative[rank] = rank

        # Ranks that were never emulated (selective launch) borrow the trace
        # of their topological representative.
        missing = [rank for rank in range(job.world_size)
                   if rank not in representative]
        if missing:
            if topology is None:
                raise ValueError(
                    "job trace is missing ranks "
                    f"{missing[:8]}{'...' if len(missing) > 8 else ''} and no "
                    "topology was provided to expand selectively-launched runs"
                )
            fallback = emulated[0] if emulated else None
            for rank in missing:
                rep = topology.representative_of(rank)
                if rep not in representative:
                    if job.any_oom() and fallback is not None:
                        # Emulation aborted early on an out-of-memory rank;
                        # the remaining ranks only need a stand-in trace so
                        # the OOM verdict can be reported.
                        representative[rank] = representative[fallback]
                        continue
                    raise ValueError(
                        f"representative rank {rep} for rank {rank} was not "
                        "emulated"
                    )
                representative[rank] = representative[rep]
        return representative

    # ------------------------------------------------------------------
    # collective resolution
    # ------------------------------------------------------------------
    def _resolve_collectives(
        self, trace: WorkerTrace
    ) -> Dict[int, CollectiveResolution]:
        resolutions: Dict[int, CollectiveResolution] = {}
        #: (comm_id, src_pos, dst_pos) -> number of messages seen so far.
        pair_counters: Dict[Tuple, int] = {}

        for event in trace.events:
            if event.kind is not TraceEventKind.COLLECTIVE:
                continue
            info = event.collective or {}
            op = str(info.get("op", "all_reduce"))
            group = tuple(info.get("ranks", ()))
            tag = str(info.get("comm_tag", "")) or "default"
            rank = int(info.get("rank", trace.rank))
            nranks = int(info.get("nranks", max(len(group), 1)))
            nbytes = float(event.params.get("bytes", 0.0))
            seq_in_comm = int(info.get("seq", event.seq))
            self_position = group.index(rank) if rank in group else 0

            peer_position = None
            pair_index = None
            is_p2p = op in _P2P_OPS
            if is_p2p:
                peer = int(info.get("peer", rank))
                peer_position = group.index(peer) if peer in group else 0
                if op == "send":
                    pair_key = (info.get("comm_id"), self_position, peer_position)
                else:
                    pair_key = (info.get("comm_id"), peer_position, self_position)
                pair_index = pair_counters.get(pair_key, 0)
                pair_counters[pair_key] = pair_index + 1

            resolutions[event.seq] = CollectiveResolution(
                op=op,
                tag=tag,
                nranks=nranks,
                nbytes=nbytes,
                seq_in_comm=seq_in_comm,
                representative_group=group,
                self_position=self_position,
                peer_position=peer_position,
                pair_index=pair_index,
                is_p2p=is_p2p,
            )
        return resolutions
