"""Analysis utilities: MFU, cost accounting, error metrics and knob effects."""

from repro.analysis.metrics import (
    absolute_percentage_error,
    cost_of_run,
    error_cdf,
    mfu,
    normalized_cost,
)

__all__ = [
    "absolute_percentage_error",
    "cost_of_run",
    "error_cdf",
    "mfu",
    "normalized_cost",
]
