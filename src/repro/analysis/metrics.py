"""Evaluation metrics.

The paper reports three families of numbers:

* **prediction error** -- absolute percentage error of predicted vs actual
  iteration time (Figures 7, 9, 10; Table 3),
* **Model FLOPs Utilisation (MFU)** -- achieved model FLOPs divided by the
  cluster's peak throughput (Figures 2, 12, 16), and
* **cost** -- dollars per training iteration, used to normalise
  configuration-selection quality (Figures 2b, 8, 11b).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.hardware.cluster import ClusterSpec


def absolute_percentage_error(actual: float, predicted: float) -> float:
    """|predicted - actual| / actual, in percent."""
    if actual <= 0 or not math.isfinite(actual) or not math.isfinite(predicted):
        return math.inf
    return abs(predicted - actual) / actual * 100.0


def error_cdf(errors: Iterable[float]) -> List[Tuple[float, float]]:
    """Return (error, cumulative fraction) pairs for plotting a CDF."""
    finite = sorted(err for err in errors if math.isfinite(err))
    if not finite:
        return []
    n = len(finite)
    return [(err, (idx + 1) / n) for idx, err in enumerate(finite)]


def mfu(iteration_time: float, flops_per_iteration: float,
        cluster: ClusterSpec, dtype: str = "bfloat16") -> float:
    """Model FLOPs Utilisation of one training iteration."""
    if iteration_time <= 0 or not math.isfinite(iteration_time):
        return 0.0
    peak = cluster.world_size * cluster.gpu.peak_flops_for(dtype)
    if peak <= 0:
        return 0.0
    return min(flops_per_iteration / (iteration_time * peak), 1.0)


def cost_of_run(iteration_time: float, cluster: ClusterSpec,
                iterations: int = 1) -> float:
    """Dollar cost of running ``iterations`` training steps on ``cluster``."""
    if not math.isfinite(iteration_time):
        return math.inf
    hours = iteration_time * iterations / 3600.0
    return hours * cluster.hourly_cost


def normalized_cost(iteration_time: float, optimal_iteration_time: float) -> float:
    """Cost of a configuration relative to the optimal one (same cluster).

    On a fixed cluster, cost per iteration is proportional to iteration
    time, so the normalised cost reduces to the time ratio -- exactly the
    quantity plotted in Figures 2b, 8 and 11b.
    """
    if optimal_iteration_time <= 0 or not math.isfinite(optimal_iteration_time):
        return math.inf
    if not math.isfinite(iteration_time):
        return math.inf
    return iteration_time / optimal_iteration_time


def fraction_below(errors: Sequence[float], threshold: float) -> float:
    """Fraction of errors at or below ``threshold`` percent (Figure 9 text)."""
    finite = [err for err in errors if math.isfinite(err)]
    if not finite:
        return 0.0
    return sum(1 for err in finite if err <= threshold) / len(finite)
