"""Knob-effect analysis (Table 2 of the paper).

Table 2 summarises how each configuration knob moves three resources --
compute utilisation, memory load and network load -- at a fixed global batch
size.  Because Maya observes the complete device API stream, those
directions can be *measured* rather than asserted: this module toggles one
knob at a time on a reference configuration, runs the emulation + testbed
pipeline, and reports the deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.pipeline import MayaPipeline
from repro.core.trace import TraceEventKind
from repro.framework.recipe import TrainingRecipe
from repro.framework.transformer import TransformerModelSpec
from repro.hardware.cluster import ClusterSpec
from repro.testbed import Testbed
from repro.workloads.job import TransformerTrainingJob


@dataclass
class KnobEffect:
    """Measured effect of toggling one knob relative to a baseline recipe."""

    knob: str
    compute_direction: str
    memory_direction: str
    network_direction: str
    iteration_time_ratio: float
    peak_memory_ratio: float
    communication_ratio: float


#: Directions reported by Table 2 in the paper, for comparison in benchmarks.
PAPER_TABLE2_DIRECTIONS: Dict[str, Dict[str, str]] = {
    "tensor_parallel": {"compute": "down", "memory": "down", "network": "up"},
    "pipeline_parallel": {"compute": "down", "memory": "down", "network": "up"},
    "sequence_parallel": {"compute": "down", "memory": "down", "network": "up"},
    "pipeline_interleaving": {"compute": "up", "memory": "down", "network": "up"},
    "distributed_optimizer": {"compute": "flat", "memory": "down", "network": "up"},
    "activation_recomputation": {"compute": "down", "memory": "down",
                                 "network": "flat"},
    "gradient_accumulation": {"compute": "down", "memory": "down",
                              "network": "down"},
}


def _direction(ratio: float, threshold: float = 0.03,
               invert: bool = False) -> str:
    """Classify a ratio as up / down / flat with a small dead band."""
    if invert:
        ratio = 1.0 / ratio if ratio > 0 else float("inf")
    if ratio > 1.0 + threshold:
        return "up"
    if ratio < 1.0 - threshold:
        return "down"
    return "flat"


def _network_bytes(artifacts) -> float:
    """Largest per-worker collective payload volume in the emulated trace."""
    totals = []
    for trace in artifacts.collated.traces.values():
        totals.append(sum(float(event.params.get("bytes", 0.0))
                          for event in trace.events
                          if event.kind is TraceEventKind.COLLECTIVE))
    return max(totals) if totals else 0.0


def _measure(model: TransformerModelSpec, recipe: TrainingRecipe,
             cluster: ClusterSpec, global_batch_size: int,
             testbed: Testbed, pipeline: MayaPipeline):
    job = TransformerTrainingJob(model, recipe, cluster,
                                 global_batch_size=global_batch_size)
    if job.validate():
        return None
    artifacts = pipeline.emulate(job)
    result = testbed.measure(job, artifacts)
    network = _network_bytes(artifacts) if not artifacts.oom else 0.0
    return result, network


def measure_knob_effects(
    model: TransformerModelSpec,
    cluster: ClusterSpec,
    global_batch_size: int,
    base_recipe: Optional[TrainingRecipe] = None,
) -> List[KnobEffect]:
    """Measure Table 2's knob directions on the emulated testbed."""
    dtype = "float16" if cluster.gpu.architecture == "volta" else "bfloat16"
    base = base_recipe or TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                                         microbatch_multiplier=2, dtype=dtype)
    testbed = Testbed(cluster)
    pipeline = MayaPipeline(cluster, estimator_mode="analytical")
    measured = _measure(model, base, cluster, global_batch_size, testbed,
                        pipeline)
    if measured is None or not measured[0].succeeded:
        raise ValueError("reference recipe is invalid or OOM; pick another base")
    reference, reference_network = measured

    variants: Dict[str, TrainingRecipe] = {
        # Doubling TP halves the data-parallel degree; doubling the number of
        # microbatches keeps the micro-batch size constant so the comparison
        # isolates the knob (the paper's fixed-global-batch setting).
        "tensor_parallel": base.replace(
            tensor_parallel=base.tensor_parallel * 2,
            microbatch_multiplier=base.microbatch_multiplier * 2),
        "pipeline_parallel": base.replace(
            pipeline_parallel=base.pipeline_parallel * 2),
        "sequence_parallel": base.replace(sequence_parallelism=True),
        "pipeline_interleaving": base.replace(virtual_stages=2),
        "distributed_optimizer": base.replace(distributed_optimizer=True),
        "activation_recomputation": base.replace(activation_recomputation=True),
        "gradient_accumulation": base.replace(
            microbatch_multiplier=base.microbatch_multiplier * 2),
    }

    effects: List[KnobEffect] = []
    for knob, recipe in variants.items():
        measured_variant = _measure(model, recipe, cluster, global_batch_size,
                                    testbed, pipeline)
        if measured_variant is None:
            continue
        result, network = measured_variant
        if not result.succeeded:
            # An OOM variant unambiguously increased memory pressure.
            effects.append(KnobEffect(
                knob=knob, compute_direction="flat", memory_direction="up",
                network_direction="flat", iteration_time_ratio=float("inf"),
                peak_memory_ratio=float("inf"), communication_ratio=1.0))
            continue
        time_ratio = result.iteration_time / reference.iteration_time
        memory_ratio = (max(result.peak_memory_bytes, 1)
                        / max(reference.peak_memory_bytes, 1))
        comm_ratio = (max(network, 1e-9) / max(reference_network, 1e-9))
        effects.append(KnobEffect(
            knob=knob,
            # Per-device compute load: longer iterations at fixed work mean
            # lower utilisation, so the direction is inverted.
            compute_direction=_direction(time_ratio, invert=True),
            memory_direction=_direction(memory_ratio),
            network_direction=_direction(comm_ratio),
            iteration_time_ratio=time_ratio,
            peak_memory_ratio=memory_ratio,
            communication_ratio=comm_ratio,
        ))
    return effects
