"""Shared experiment harness used by the benchmark suite.

Every figure/table benchmark needs the same ingredients: a set of candidate
training recipes for a (model, cluster, batch) triple, testbed ("actual")
measurements, Maya predictions and baseline predictions.  This module
factors that machinery out so each benchmark file only describes *what* it
reproduces and prints the paper-style rows.

Benchmark cost is controlled by two environment variables:

``REPRO_BENCH_CONFIGS``
    Maximum number of configurations evaluated per deployment setup
    (default 6; the paper uses the top-100 valid configurations).
``REPRO_BENCH_SCALE``
    Divisor applied to model depth for the very large models so that the
    full benchmark suite completes on a laptop-class CPU (default 4).
    Layer counts scale linearly in both the prediction and the reference
    model, so accuracy comparisons are unaffected.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.metrics import absolute_percentage_error, mfu, normalized_cost
from repro.baselines import all_baselines
from repro.core.pipeline import PredictionResult
from repro.framework.recipe import TrainingRecipe
from repro.framework.transformer import TransformerModelSpec
from repro.hardware.cluster import ClusterSpec
from repro.hardware.noise import stable_hash
from repro.search.space import ConfigurationSpace, default_search_space
from repro.service import ArtifactCache, PredictionService
from repro.testbed import Testbed
from repro.workloads.job import TransformerTrainingJob
from repro.workloads.models import get_transformer


def bench_config_budget(default: int = 6) -> int:
    """Number of configurations per setup, controlled by the environment."""
    return max(int(os.environ.get("REPRO_BENCH_CONFIGS", default)), 2)


def bench_scale(default: int = 4) -> int:
    """Model-depth divisor for the largest models."""
    return max(int(os.environ.get("REPRO_BENCH_SCALE", default)), 1)


def scaled_transformer(name: str, min_layers: int = 8) -> TransformerModelSpec:
    """Return a model preset, depth-scaled for benchmark tractability."""
    model = get_transformer(name)
    scale = bench_scale()
    if scale <= 1 or model.num_layers <= min_layers:
        return model
    layers = max(model.num_layers // scale, min_layers)
    return replace(model, name=f"{model.name}-x{scale}", num_layers=layers)


@dataclass
class ConfigEvaluation:
    """All systems' view of one training configuration."""

    recipe: TrainingRecipe
    actual: PredictionResult
    maya: PredictionResult
    baselines: Dict[str, float] = field(default_factory=dict)
    oracle: Optional[PredictionResult] = None

    @property
    def feasible(self) -> bool:
        return self.actual.succeeded

    @property
    def actual_time(self) -> float:
        return self.actual.iteration_time

    @property
    def maya_error(self) -> float:
        return absolute_percentage_error(self.actual.iteration_time,
                                         self.maya.iteration_time)

    def baseline_error(self, name: str) -> float:
        predicted = self.baselines.get(name, math.inf)
        return absolute_percentage_error(self.actual.iteration_time, predicted)


@dataclass
class SetupEvaluation:
    """Evaluations for one (model, cluster, global batch) deployment setup."""

    name: str
    model: TransformerModelSpec
    cluster: ClusterSpec
    global_batch_size: int
    evaluations: List[ConfigEvaluation] = field(default_factory=list)
    #: Artifact-cache counters from the prediction service that evaluated
    #: this setup (testbed + Maya + oracle share emulation artifacts).
    cache_stats: Dict[str, float] = field(default_factory=dict)

    def feasible(self) -> List[ConfigEvaluation]:
        return [ev for ev in self.evaluations if ev.feasible]

    def optimal(self) -> Optional[ConfigEvaluation]:
        feasible = self.feasible()
        if not feasible:
            return None
        return min(feasible, key=lambda ev: ev.actual_time)

    def selection_cost(self, system: str) -> float:
        """Normalised actual cost of the config the given system selects."""
        optimal = self.optimal()
        if optimal is None:
            return math.inf
        feasible = self.feasible()
        if system == "maya":
            usable = [ev for ev in feasible
                      if math.isfinite(ev.maya.iteration_time)]
            if not usable:
                return math.inf
            chosen = min(usable, key=lambda ev: ev.maya.iteration_time)
        elif system == "optimal":
            chosen = optimal
        else:
            usable = [ev for ev in feasible
                      if math.isfinite(ev.baselines.get(system, math.inf))]
            if not usable:
                return math.inf
            chosen = min(usable, key=lambda ev: ev.baselines[system])
        return normalized_cost(chosen.actual_time, optimal.actual_time)

    def maya_errors(self) -> List[float]:
        return [ev.maya_error for ev in self.feasible()]

    def baseline_errors(self, name: str) -> List[float]:
        return [ev.baseline_error(name) for ev in self.feasible()
                if math.isfinite(ev.baselines.get(name, math.inf))]


def candidate_recipes(
    model: TransformerModelSpec,
    cluster: ClusterSpec,
    global_batch_size: int,
    limit: Optional[int] = None,
    space: Optional[ConfigurationSpace] = None,
    dtype: Optional[str] = None,
    seed: int = 0,
) -> List[TrainingRecipe]:
    """Enumerate valid recipes for a setup and subsample deterministically.

    The subsample is stratified by a stable hash so that repeated runs (and
    different systems) see the same configurations, mirroring the paper's
    fixed ~2000-point grid per cluster.
    """
    if dtype is None:
        dtype = "float16" if cluster.gpu.architecture == "volta" else "bfloat16"
    if space is None:
        space = default_search_space(dtype=dtype)
    valid = space.valid_recipes(cluster.world_size, global_batch_size,
                                model.num_layers, model.num_heads,
                                cluster.gpus_per_node)
    if limit is None or len(valid) <= limit:
        return valid
    ranked = sorted(valid, key=lambda recipe: stable_hash(seed, recipe.short_name()))
    return ranked[:limit]


def evaluate_setup(
    name: str,
    model: TransformerModelSpec,
    cluster: ClusterSpec,
    global_batch_size: int,
    recipes: Sequence[TrainingRecipe],
    estimator_mode: str = "learned",
    include_baselines: bool = True,
    include_oracle: bool = False,
    backend: str = "thread",
    jobs: Optional[int] = None,
    worker_hosts: Optional[Sequence[str]] = None,
    sync_timeout: Optional[float] = None,
    lease_timeout: Optional[float] = None,
    store_dir: Optional[str] = None,
    scheduler: Optional[str] = None,
) -> SetupEvaluation:
    """Measure (testbed) and predict (Maya + baselines) a set of recipes.

    All systems that replay emulation artifacts -- the testbed reference
    model, Maya's prediction and the optional oracle -- share one
    :class:`~repro.service.ArtifactCache`, so each configuration is emulated
    and collated exactly once (the cross-trial reuse of Section 7.4).

    ``backend`` / ``jobs`` select the service's batch-evaluation strategy:
    with more than one job, every configuration's emulation + Maya
    prediction runs as one ``predict_many`` batch up front (in separate
    processes under the ``process`` / ``persistent`` backends, or on the
    remote ``worker_hosts`` addresses under ``socket``), and the
    sequential testbed/baseline loop below then replays the cached
    artifacts.  Services are closed on the way out, so persistent worker
    pools never outlive the call.
    """
    cache = ArtifactCache(max_entries=max(len(recipes) + 1, 8))
    service = PredictionService(cluster=cluster, estimator_mode=estimator_mode,
                                cache=cache, backend=backend,
                                max_workers=jobs or 1,
                                workers=worker_hosts,
                                sync_timeout=sync_timeout,
                                lease_timeout=lease_timeout,
                                store_dir=store_dir,
                                scheduler=scheduler)
    oracle_service = PredictionService(cluster=cluster, estimator_mode="oracle",
                                       cache=cache, backend=backend,
                                       max_workers=jobs or 1,
                                       sync_timeout=sync_timeout,
                                       lease_timeout=lease_timeout) \
        if include_oracle else None
    testbed = Testbed(cluster)
    baselines = all_baselines() if include_baselines else []
    setup = SetupEvaluation(name=name, model=model, cluster=cluster,
                            global_batch_size=global_batch_size)

    try:
        candidates = []
        for recipe in recipes:
            job = TransformerTrainingJob(model, recipe, cluster,
                                         global_batch_size=global_batch_size)
            if not job.validate():
                candidates.append((recipe, job))
        if (jobs or 1) > 1 and len(candidates) > 1:
            # Batch pre-evaluation: emulate + predict every configuration
            # through the configured backend; the loop below resolves from
            # the merged cache.
            service.predict_many([job for _, job in candidates])

        for recipe, job in candidates:
            artifacts = service.artifacts_for(job)
            actual = testbed.measure(job, artifacts)
            predicted = service.predict(job)
            evaluation = ConfigEvaluation(recipe=recipe, actual=actual,
                                          maya=predicted)
            if oracle_service is not None and not artifacts.oom:
                evaluation.oracle = oracle_service.predict(job)
            for baseline in baselines:
                prediction = baseline.predict(model, recipe, cluster,
                                              global_batch_size)
                if prediction.usable:
                    evaluation.baselines[baseline.name] = \
                        prediction.iteration_time
            setup.evaluations.append(evaluation)
        setup.cache_stats = service.cache_stats()
        return setup
    finally:
        # Persistent pools must not outlive the setup evaluation.
        service.close()
        if oracle_service is not None:
            oracle_service.close()


def setup_mfu(setup: SetupEvaluation, evaluation: ConfigEvaluation) -> float:
    """MFU of one configuration under a setup's actual measurement."""
    job_flops = (setup.model.flops_per_sample() * setup.global_batch_size)
    return mfu(evaluation.actual_time, job_flops, setup.cluster,
               dtype=evaluation.recipe.dtype)


def format_row(values: Iterable[object], widths: Optional[List[int]] = None) -> str:
    """Fixed-width row formatting for benchmark stdout tables."""
    cells = [str(value) for value in values]
    if widths is None:
        widths = [max(len(cell), 10) for cell in cells]
    return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
