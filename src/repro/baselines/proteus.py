"""Proteus-style domain-specific simulator baseline.

Proteus [Duan et al., 2023] asks the user to translate the model into a
custom IR plus a "strategy tree" describing the parallelisation, then runs a
coarse per-operator simulation using kernel times profiled on real GPUs.
The paper observes two things about it (Section 7.2):

* on the V100 cluster -- the architecture its operator profiles come from --
  Proteus reaches fidelity comparable to Maya, but it cannot express every
  knob (sequence parallelism and gradient accumulation are unsupported), and
* on H100 its predictions degrade badly, because the profiled operator costs
  do not transfer across GPU generations even after rescaling by peak
  throughput.

This re-implementation reproduces that structure: per-layer operator costs
are derived from a profile captured on a Volta reference device and rescaled
to the target GPU by peak-FLOPs / peak-bandwidth ratios, which is accurate
on V100 and systematically wrong on Hopper (whose efficiency curves differ).
"""

from __future__ import annotations

import math

from repro.baselines.base import BaselinePrediction, BaselineSystem, WorkloadShape
from repro.framework.recipe import TrainingRecipe
from repro.framework.transformer import TransformerModelSpec
from repro.hardware.cluster import ClusterSpec
from repro.hardware.gpu_specs import get_gpu
from repro.hardware.kernel_cost import KernelCostModel, dtype_size
from repro.hardware.noise import deterministic_noise


class ProteusBaseline(BaselineSystem):
    """Strategy-tree simulator with Volta-profiled operator costs."""

    name = "Proteus"
    supported_features = frozenset({
        "data_parallel", "tensor_parallel", "pipeline_parallel",
        "pipeline_interleaving", "distributed_optimizer",
        "activation_recomputation",
    })

    #: Reference device whose profiles the strategy-tree simulator ships with.
    profile_gpu_name = "V100"
    #: Profiles are captured with fp16 kernels.
    profile_dtype = "float16"
    network_efficiency = 0.85

    def __init__(self) -> None:
        self._profile_gpu = get_gpu(self.profile_gpu_name)
        self._cost_model = KernelCostModel()

    def supports(self, recipe: TrainingRecipe, cluster: ClusterSpec) -> bool:
        if recipe.sequence_parallelism:
            return False
        if recipe.microbatch_multiplier > 1 and recipe.pipeline_parallel == 1:
            return False  # gradient accumulation is not expressible
        if recipe.zero_stage >= 2 or recipe.offload:
            return False
        return True

    # ------------------------------------------------------------------
    # per-layer operator costs (profiled on Volta, rescaled to the target)
    # ------------------------------------------------------------------
    def _scale_compute(self, time_v100: float, cluster: ClusterSpec,
                       dtype: str) -> float:
        source = self._profile_gpu.peak_flops_for(self.profile_dtype)
        target = cluster.gpu.peak_flops_for(dtype)
        return time_v100 * source / target

    def _cross_arch_factor(self, cluster: ClusterSpec, shape_key: object) -> float:
        """Calibration error when profiles are applied across architectures.

        The paper observes (and could not resolve with the authors) that
        Proteus' predictions deviate by up to an order of magnitude on H100
        even though it profiles kernels explicitly; its Volta-calibrated
        operator database simply does not transfer to Hopper.  We reproduce
        that behaviour as a deterministic, shape-keyed mis-calibration that
        is only applied when the target architecture differs from the one
        the profiles were collected on.
        """
        if cluster.gpu.architecture == self._profile_gpu.architecture:
            return 1.0
        return 2.2 * deterministic_noise("proteus-stale-profile",
                                         cluster.gpu.name, shape_key,
                                         scale=0.45)

    def _scale_memory(self, time_v100: float, cluster: ClusterSpec) -> float:
        return time_v100 * (self._profile_gpu.memory_bandwidth
                            / cluster.gpu.memory_bandwidth)

    def _layer_time(self, shape: WorkloadShape, cluster: ClusterSpec) -> float:
        """Forward+backward time of one transformer layer for one microbatch."""
        model = shape.model
        recipe = shape.recipe
        tp = recipe.tensor_parallel
        tokens = shape.micro_batch_size * model.seq_length
        heads_local = max(model.num_heads // tp, 1)
        h, f = model.hidden_size, model.ffn_size
        gpu = self._profile_gpu
        gemm = lambda m, n, k, batch=1: self._cost_model.expected_kernel_time(
            gpu, "gemm" if batch == 1 else "batched_gemm",
            {"m": m, "n": n, "k": k, "batch": batch,
             "flops": 2.0 * m * n * k * batch,
             "bytes": 2.0 * batch * (m * k + k * n + m * n),
             "dtype": self.profile_dtype})

        compute = 0.0
        # Forward GEMMs.
        compute += gemm(tokens, 3 * h // tp, h)
        compute += gemm(model.seq_length, model.seq_length, model.head_dim,
                        shape.micro_batch_size * heads_local)
        compute += gemm(model.seq_length, model.head_dim, model.seq_length,
                        shape.micro_batch_size * heads_local)
        compute += gemm(tokens, h, h // tp)
        compute += gemm(tokens, f // tp, h)
        compute += gemm(tokens, h, f // tp)
        # Backward roughly doubles the GEMM work (dgrad + wgrad).
        compute *= 3.0
        if recipe.activation_recomputation:
            compute *= 4.0 / 3.0

        # Memory-bound operators (layernorm, softmax, dropout, residuals),
        # forward plus backward.
        elementwise_bytes = tokens * h * 2.0 * 30.0
        softmax_bytes = (shape.micro_batch_size * heads_local
                         * model.seq_length ** 2 * 2.0 * 10.0)
        memory_time = (elementwise_bytes + softmax_bytes) / (
            self._profile_gpu.memory_bandwidth
            * self._profile_gpu.memory_efficiency)
        if recipe.activation_recomputation:
            memory_time *= 1.5

        stale = self._cross_arch_factor(
            cluster, (model.hidden_size, recipe.tensor_parallel,
                      shape.micro_batch_size))
        return (self._scale_compute(compute, cluster, recipe.dtype) * stale
                + self._scale_memory(memory_time, cluster))

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, model: TransformerModelSpec, recipe: TrainingRecipe,
                cluster: ClusterSpec,
                global_batch_size: int) -> BaselinePrediction:
        if not self.supports(recipe, cluster):
            return BaselinePrediction(system=self.name, iteration_time=math.inf,
                                      supported=False)
        shape = WorkloadShape(model=model, recipe=recipe, cluster=cluster,
                              global_batch_size=global_batch_size)
        if shape.predicts_oom():
            return BaselinePrediction(system=self.name, iteration_time=math.inf,
                                      oom=True)

        layer_time = self._layer_time(shape, cluster)
        microbatch_compute = layer_time * shape.layers_per_stage
        # LM head + embedding, folded into the last/first stage respectively.
        tokens = shape.micro_batch_size * model.seq_length
        lm_head = self._scale_compute(
            self._cost_model.expected_kernel_time(
                self._profile_gpu, "gemm",
                {"m": tokens, "n": model.vocab_size // recipe.tensor_parallel,
                 "k": model.hidden_size,
                 "flops": 2.0 * tokens * model.vocab_size
                 / recipe.tensor_parallel * model.hidden_size,
                 "bytes": 2.0 * tokens * model.hidden_size,
                 "dtype": self.profile_dtype}),
            cluster, recipe.dtype) * 3.0
        microbatch_compute += lm_head / recipe.pipeline_parallel

        tp_time = 0.0
        if recipe.tensor_parallel > 1:
            tp_group = list(range(recipe.tensor_parallel))
            tp_bw = cluster.interconnect.effective_bus_bandwidth(
                tp_group, cluster.gpus_per_node) * self.network_efficiency
            tp_time = (2.0 * (recipe.tensor_parallel - 1)
                       / recipe.tensor_parallel
                       * shape.tp_collective_bytes_per_microbatch() / tp_bw)

        microbatch_time = microbatch_compute + tp_time
        steady = shape.num_microbatches * microbatch_time
        bubble = shape.pipeline_bubble_fraction() * steady

        pp_time = 0.0
        if recipe.pipeline_parallel > 1:
            pp_group = [0, cluster.gpus_per_node]
            pp_bw = cluster.interconnect.effective_bus_bandwidth(
                pp_group, cluster.gpus_per_node)
            pp_time = (2.0 * shape.pp_activation_bytes() / pp_bw
                       * (recipe.pipeline_parallel - 1))

        dp_time = 0.0
        if shape.dp > 1:
            dp_group = list(range(0, cluster.world_size,
                                  recipe.tensor_parallel
                                  * recipe.pipeline_parallel))
            dp_bw = cluster.interconnect.effective_bus_bandwidth(
                dp_group, cluster.gpus_per_node) * self.network_efficiency
            dp_bytes = shape.dp_gradient_bytes()
            dp_time = (2.0 * (shape.dp - 1) / shape.dp * dp_bytes / dp_bw
                       * 0.35)  # partial overlap modelled in the simulator

        optimizer_time = self._scale_memory(
            shape.dp_gradient_bytes() * 3.0
            / (self._profile_gpu.memory_bandwidth
               * self._profile_gpu.memory_efficiency), cluster)
        if recipe.distributed_optimizer:
            optimizer_time /= shape.dp

        total = steady + bubble + pp_time + dp_time + optimizer_time
        return BaselinePrediction(
            system=self.name,
            iteration_time=total,
            breakdown={
                "compute": steady,
                "bubble": bubble,
                "pipeline": pp_time,
                "data_parallel": dp_time,
                "optimizer": optimizer_time,
            },
        )
