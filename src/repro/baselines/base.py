"""Shared scaffolding for baseline performance models.

All three baselines consume a *declarative* description of the workload --
the model architecture plus a handful of configuration knobs -- rather than
an execution trace.  That is exactly the semantic gap the paper describes:
whatever the specification does not express (host overheads, scheduling
details, hardware efficiency curves), the baseline cannot model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.framework.recipe import TrainingRecipe
from repro.framework.transformer import TransformerModelSpec
from repro.hardware.cluster import ClusterSpec
from repro.hardware.kernel_cost import dtype_size


@dataclass
class BaselinePrediction:
    """Outcome of a baseline's runtime prediction."""

    system: str
    iteration_time: float
    supported: bool = True
    oom: bool = False
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def usable(self) -> bool:
        """Whether the prediction can be used for configuration selection."""
        return self.supported and not self.oom and math.isfinite(self.iteration_time)


class BaselineSystem:
    """Interface shared by Calculon-, AMPeD- and Proteus-style predictors."""

    name: str = "baseline"
    #: Knobs this system can express (compared against Table 1).
    supported_features: frozenset = frozenset()

    def supports(self, recipe: TrainingRecipe, cluster: ClusterSpec) -> bool:
        """Whether this system can model ``recipe`` at all."""
        raise NotImplementedError

    def predict(self, model: TransformerModelSpec, recipe: TrainingRecipe,
                cluster: ClusterSpec,
                global_batch_size: int) -> BaselinePrediction:
        """Predict the per-iteration runtime of a training configuration."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# shared analytical building blocks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadShape:
    """Derived quantities every analytical baseline needs."""

    model: TransformerModelSpec
    recipe: TrainingRecipe
    cluster: ClusterSpec
    global_batch_size: int

    @property
    def world_size(self) -> int:
        return self.cluster.world_size

    @property
    def dp(self) -> int:
        return self.recipe.data_parallel_degree(self.world_size)

    @property
    def num_microbatches(self) -> int:
        return self.recipe.num_microbatches

    @property
    def micro_batch_size(self) -> int:
        return self.recipe.micro_batch_size(self.global_batch_size,
                                            self.world_size)

    @property
    def layers_per_stage(self) -> float:
        return self.model.num_layers / self.recipe.pipeline_parallel

    def microbatch_flops_per_stage(self) -> float:
        """Forward+backward model FLOPs of one microbatch on one stage."""
        tokens = self.micro_batch_size * self.model.seq_length
        per_layer = 6.0 * self.model.params_per_layer + 12.0 * \
            self.model.hidden_size * self.model.seq_length
        stage_flops = tokens * per_layer * self.layers_per_stage
        if self.recipe.pipeline_parallel == 1:
            stage_flops += tokens * 6.0 * self.model.vocab_size * \
                self.model.hidden_size
        else:
            # LM head on the last stage only; spread evenly as an estimate.
            stage_flops += tokens * 6.0 * self.model.vocab_size * \
                self.model.hidden_size / self.recipe.pipeline_parallel
        if self.recipe.activation_recomputation:
            stage_flops *= 4.0 / 3.0
        return stage_flops / self.recipe.tensor_parallel

    def tp_collective_bytes_per_microbatch(self) -> float:
        """Bytes moved by tensor-parallel collectives per microbatch/stage."""
        if self.recipe.tensor_parallel == 1:
            return 0.0
        tokens = self.micro_batch_size * self.model.seq_length
        width = dtype_size(self.recipe.dtype)
        per_layer_ops = 4.0  # fwd attn + fwd mlp + bwd attn + bwd mlp
        if self.recipe.activation_recomputation:
            per_layer_ops += 2.0
        return per_layer_ops * tokens * self.model.hidden_size * width * \
            self.layers_per_stage

    def elementwise_bytes_per_microbatch(self) -> float:
        """Bytes moved by memory-bound kernels per microbatch on one stage.

        Covers layernorms, softmax, dropout, activations and residual adds
        for forward plus backward (roughly 30 hidden-sized streams plus the
        attention-score tensors), the part of the workload naive FLOP-only
        models tend to ignore.
        """
        tokens = self.micro_batch_size * self.model.seq_length
        width = dtype_size(self.recipe.dtype)
        tp = self.recipe.tensor_parallel
        hidden_streams = 30.0 * tokens * self.model.hidden_size
        score_streams = (10.0 * self.micro_batch_size * self.model.num_heads
                         * self.model.seq_length ** 2 / tp)
        per_layer = (hidden_streams + score_streams) * width
        total = per_layer * self.layers_per_stage
        if self.recipe.activation_recomputation:
            total *= 1.5
        return total

    def dp_gradient_bytes(self) -> float:
        """Bytes of gradients reduced across the data-parallel group."""
        local_params = (self.model.num_layers * self.model.params_per_layer
                        / (self.recipe.tensor_parallel
                           * self.recipe.pipeline_parallel)
                        + self.model.embedding_params
                        / self.recipe.tensor_parallel)
        return local_params * 4.0  # fp32 gradient buffers

    def pp_activation_bytes(self) -> float:
        """Bytes of one activation transfer between pipeline stages."""
        tokens = self.micro_batch_size * self.model.seq_length
        return tokens * self.model.hidden_size * dtype_size(self.recipe.dtype)

    def pipeline_bubble_fraction(self) -> float:
        """Classic 1F1B bubble fraction, reduced by interleaving."""
        pp = self.recipe.pipeline_parallel
        if pp == 1:
            return 0.0
        chunks = max(self.recipe.virtual_stages, 1)
        return (pp - 1) / (self.num_microbatches * chunks)

    # ------------------------------------------------------------------
    # memory model (used by baselines to reject configurations)
    # ------------------------------------------------------------------
    def estimated_memory_bytes(self) -> float:
        """Approximate per-GPU memory demand of this configuration."""
        tp = self.recipe.tensor_parallel
        pp = self.recipe.pipeline_parallel
        width = dtype_size(self.recipe.dtype)
        local_params = (self.model.num_layers * self.model.params_per_layer
                        / (tp * pp)
                        + self.model.embedding_params / tp)
        param_bytes = local_params * width
        grad_bytes = local_params * 4.0
        optimizer_bytes = local_params * 12.0
        if self.recipe.distributed_optimizer or self.recipe.zero_stage >= 1:
            optimizer_bytes /= max(self.dp, 1)
        s = self.model.seq_length
        b = self.micro_batch_size
        h = self.model.hidden_size
        a = self.model.num_heads
        sp = tp if self.recipe.sequence_parallelism else 1
        if self.recipe.activation_recomputation:
            act_per_layer = s * b * h * width / sp
        else:
            act_per_layer = s * b * h * (10.0 / tp + 9.0 / sp) * width \
                + 5.0 * a * s * s * b / tp * width
        in_flight = min(pp, self.num_microbatches)
        activation_bytes = act_per_layer * self.layers_per_stage * in_flight
        overhead = 2.0 * 1024 ** 3  # CUDA context, framework, fragmentation
        return param_bytes + grad_bytes + optimizer_bytes + activation_bytes \
            + overhead

    def predicts_oom(self) -> bool:
        return self.estimated_memory_bytes() > self.cluster.gpu.memory_bytes
