"""Calculon-style analytical baseline.

Calculon [Isaev et al., SC'23] is a closed-form co-design model specialised
for Megatron-LM transformer training.  It covers most parallelisation knobs
(Table 1 in the paper) but, because it reasons only about idealised compute
and communication phases, it misses host-side dispatch overheads, kernel
launch floors, imperfect overlap and hardware efficiency curves.  The net
effect reported in the paper is a *systematic underestimation* of iteration
time, which in turn drives it towards configurations that cost 10-15% more
than optimal (Figure 8).
"""

from __future__ import annotations

import math

from repro.baselines.base import BaselinePrediction, BaselineSystem, WorkloadShape
from repro.framework.recipe import TrainingRecipe
from repro.framework.transformer import TransformerModelSpec
from repro.hardware.cluster import ClusterSpec


class CalculonBaseline(BaselineSystem):
    """Closed-form Megatron-LM model with optimistic efficiency assumptions."""

    name = "Calculon"
    supported_features = frozenset({
        "data_parallel", "tensor_parallel", "pipeline_parallel",
        "sequence_parallel", "pipeline_interleaving", "distributed_optimizer",
        "activation_recomputation", "gradient_accumulation",
    })

    #: Calculon assumes tensor cores run close to peak on transformer GEMMs.
    compute_efficiency = 0.85
    #: ... and that collectives achieve nearly full link bandwidth.
    network_efficiency = 0.95
    #: Fraction of data-parallel communication assumed hidden behind compute.
    dp_overlap_fraction = 0.9

    def supports(self, recipe: TrainingRecipe, cluster: ClusterSpec) -> bool:
        # The public tool models bf16 on Ampere/Hopper tensor cores only; the
        # paper omits it from the Volta experiments for this reason.
        if recipe.dtype == "bfloat16" and cluster.gpu.architecture == "volta":
            return False
        if recipe.zero_stage >= 3 or recipe.offload:
            return False
        return True

    def predict(self, model: TransformerModelSpec, recipe: TrainingRecipe,
                cluster: ClusterSpec,
                global_batch_size: int) -> BaselinePrediction:
        if not self.supports(recipe, cluster):
            return BaselinePrediction(system=self.name, iteration_time=math.inf,
                                      supported=False)
        shape = WorkloadShape(model=model, recipe=recipe, cluster=cluster,
                              global_batch_size=global_batch_size)
        if shape.predicts_oom():
            return BaselinePrediction(system=self.name, iteration_time=math.inf,
                                      oom=True)

        gpu = cluster.gpu
        peak = gpu.peak_flops_for(recipe.dtype) * self.compute_efficiency
        compute_per_microbatch = shape.microbatch_flops_per_stage() / peak
        # Memory-bound operators at near-peak HBM bandwidth.
        compute_per_microbatch += (shape.elementwise_bytes_per_microbatch()
                                   / (gpu.memory_bandwidth * 0.95))

        # Tensor-parallel collectives ride NVLink at near-full bandwidth.
        tp_bytes = shape.tp_collective_bytes_per_microbatch()
        tp_group = list(range(recipe.tensor_parallel))
        tp_bw = cluster.interconnect.effective_bus_bandwidth(
            tp_group, cluster.gpus_per_node) / \
            cluster.interconnect.collective_efficiency * self.network_efficiency
        tp_time_per_microbatch = (
            2.0 * (recipe.tensor_parallel - 1) / recipe.tensor_parallel
            * tp_bytes / tp_bw
        ) if recipe.tensor_parallel > 1 else 0.0

        microbatch_time = compute_per_microbatch + tp_time_per_microbatch
        steady_time = shape.num_microbatches * microbatch_time
        bubble_time = shape.pipeline_bubble_fraction() * steady_time

        # Pipeline activation transfers (assumed fully overlapped except for
        # the critical path through the last stage).
        pp_time = 0.0
        if recipe.pipeline_parallel > 1:
            pp_group = [0, cluster.gpus_per_node]
            pp_bw = cluster.interconnect.effective_bus_bandwidth(
                pp_group, cluster.gpus_per_node)
            pp_time = 2.0 * shape.pp_activation_bytes() / pp_bw \
                * (recipe.pipeline_parallel - 1)

        # Data-parallel gradient reduction, mostly overlapped with backward.
        dp_time = 0.0
        if shape.dp > 1:
            dp_group = list(range(0, cluster.world_size,
                                  recipe.tensor_parallel
                                  * recipe.pipeline_parallel))
            dp_bw = cluster.interconnect.effective_bus_bandwidth(
                dp_group, cluster.gpus_per_node) * self.network_efficiency
            dp_bytes = shape.dp_gradient_bytes()
            if recipe.distributed_optimizer:
                dp_bytes *= 0.75  # reduce-scatter + gather of bf16 params
            dp_time = (2.0 * (shape.dp - 1) / shape.dp * dp_bytes / dp_bw
                       * (1.0 - self.dp_overlap_fraction))

        # Optimizer step: memory-bound fused update over local parameters.
        optimizer_time = shape.dp_gradient_bytes() * 3.0 / gpu.memory_bandwidth
        if recipe.distributed_optimizer:
            optimizer_time /= shape.dp

        total = steady_time + bubble_time + pp_time + dp_time + optimizer_time
        return BaselinePrediction(
            system=self.name,
            iteration_time=total,
            breakdown={
                "compute": steady_time,
                "bubble": bubble_time,
                "tensor_parallel": tp_time_per_microbatch * shape.num_microbatches,
                "pipeline": pp_time,
                "data_parallel": dp_time,
                "optimizer": optimizer_time,
            },
        )
