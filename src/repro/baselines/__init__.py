"""Baseline performance-modeling systems.

Behavioural re-implementations of the systems Maya is compared against in
Section 7: the analytical models Calculon and AMPeD and the domain-specific
simulator Proteus.  They are *not* ports of the original code bases; they
reproduce the properties the paper reports -- which knobs each system
supports (Table 1), and the characteristic error structure each exhibits
(Calculon's systematic underestimation, AMPeD's 2-3x overestimation,
Proteus' good V100 accuracy that degrades on H100 because its profiles do
not transfer across architectures).
"""

from repro.baselines.base import BaselinePrediction, BaselineSystem
from repro.baselines.calculon import CalculonBaseline
from repro.baselines.amped import AMPeDBaseline
from repro.baselines.proteus import ProteusBaseline

ALL_BASELINES = ("calculon", "amped", "proteus")


def get_baseline(name: str) -> BaselineSystem:
    """Instantiate a baseline system by name."""
    key = name.lower()
    if key == "calculon":
        return CalculonBaseline()
    if key in ("amped", "ampe", "ampd"):
        return AMPeDBaseline()
    if key == "proteus":
        return ProteusBaseline()
    raise KeyError(f"unknown baseline '{name}'; known: {ALL_BASELINES}")


def all_baselines() -> list:
    """Instantiate every baseline used in the evaluation figures."""
    return [get_baseline(name) for name in ALL_BASELINES]


__all__ = [
    "BaselinePrediction",
    "BaselineSystem",
    "CalculonBaseline",
    "AMPeDBaseline",
    "ProteusBaseline",
    "ALL_BASELINES",
    "get_baseline",
    "all_baselines",
]
