"""AMPeD-style analytical baseline.

AMPeD [Moolchandani et al., ISPASS'23] exposes a declarative configuration
(attention type, TP/PP degrees, ...) that is fed into a fixed library of
per-operator analytical formulas.  The paper finds that the rigid modeling
language introduces large approximation errors: AMPeD consistently
*overestimates* execution time by 2-3x (Figure 9) and, because the bias is
not uniform across configurations, it can select recipes up to 56% more
expensive than optimal (Figure 8).

The re-implementation mirrors that behaviour: conservative per-operator
efficiency assumptions, serialised communication (no overlap), per-operator
fixed overheads, and no support for sequence parallelism, interleaving,
activation recomputation, the distributed optimizer or gradient
accumulation (Table 1).
"""

from __future__ import annotations

import math

from repro.baselines.base import BaselinePrediction, BaselineSystem, WorkloadShape
from repro.framework.recipe import TrainingRecipe
from repro.framework.transformer import TransformerModelSpec
from repro.hardware.cluster import ClusterSpec


class AMPeDBaseline(BaselineSystem):
    """Fixed-operator analytical model with pessimistic efficiency factors."""

    name = "AMPeD"
    supported_features = frozenset({
        "data_parallel", "tensor_parallel", "pipeline_parallel",
    })

    #: The operator library assumes far-from-peak sustained throughput.
    compute_efficiency = 0.28
    #: Communication is modelled at nominal link bandwidth with no overlap.
    network_efficiency = 0.55
    #: Fixed per-operator overhead (in seconds) applied per layer.
    per_layer_overhead = 450e-6

    def supports(self, recipe: TrainingRecipe, cluster: ClusterSpec) -> bool:
        if recipe.dtype == "bfloat16" and cluster.gpu.architecture == "volta":
            return False
        if recipe.sequence_parallelism or recipe.distributed_optimizer:
            return False
        if recipe.virtual_stages > 1 or recipe.activation_recomputation:
            return False
        if recipe.microbatch_multiplier > 1 and recipe.pipeline_parallel == 1:
            # Gradient accumulation is not expressible in the configuration.
            return False
        if recipe.zero_stage >= 1 or recipe.offload:
            return False
        return True

    def predict(self, model: TransformerModelSpec, recipe: TrainingRecipe,
                cluster: ClusterSpec,
                global_batch_size: int) -> BaselinePrediction:
        if not self.supports(recipe, cluster):
            return BaselinePrediction(system=self.name, iteration_time=math.inf,
                                      supported=False)
        shape = WorkloadShape(model=model, recipe=recipe, cluster=cluster,
                              global_batch_size=global_batch_size)
        if shape.predicts_oom():
            return BaselinePrediction(system=self.name, iteration_time=math.inf,
                                      oom=True)

        gpu = cluster.gpu
        peak = gpu.peak_flops_for(recipe.dtype) * self.compute_efficiency
        compute_per_microbatch = shape.microbatch_flops_per_stage() / peak
        compute_per_microbatch += (shape.elementwise_bytes_per_microbatch()
                                   / (gpu.memory_bandwidth * 0.35))
        # Every transformer operator pays a fixed modelling overhead.
        compute_per_microbatch += self.per_layer_overhead * shape.layers_per_stage

        tp_time = 0.0
        if recipe.tensor_parallel > 1:
            tp_group = list(range(recipe.tensor_parallel))
            tp_bw = cluster.interconnect.effective_bus_bandwidth(
                tp_group, cluster.gpus_per_node) * self.network_efficiency
            tp_time = (2.0 * (recipe.tensor_parallel - 1)
                       / recipe.tensor_parallel
                       * shape.tp_collective_bytes_per_microbatch() / tp_bw)

        microbatch_time = compute_per_microbatch + tp_time
        steady_time = shape.num_microbatches * microbatch_time
        bubble_time = shape.pipeline_bubble_fraction() * steady_time

        pp_time = 0.0
        if recipe.pipeline_parallel > 1:
            pp_bw = cluster.interconnect.inter_node.bandwidth \
                * self.network_efficiency
            pp_time = (2.0 * shape.num_microbatches
                       * shape.pp_activation_bytes() / pp_bw)

        dp_time = 0.0
        if shape.dp > 1:
            dp_group = list(range(0, cluster.world_size,
                                  recipe.tensor_parallel
                                  * recipe.pipeline_parallel))
            dp_bw = cluster.interconnect.effective_bus_bandwidth(
                dp_group, cluster.gpus_per_node) * self.network_efficiency
            # No compute/communication overlap in the model.
            dp_time = (2.0 * (shape.dp - 1) / shape.dp
                       * shape.dp_gradient_bytes() / dp_bw)

        optimizer_time = shape.dp_gradient_bytes() * 6.0 / gpu.memory_bandwidth

        total = steady_time + bubble_time + pp_time + dp_time + optimizer_time
        return BaselinePrediction(
            system=self.name,
            iteration_time=total,
            breakdown={
                "compute": steady_time,
                "bubble": bubble_time,
                "pipeline": pp_time,
                "data_parallel": dp_time,
                "optimizer": optimizer_time,
            },
        )
